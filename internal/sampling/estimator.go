package sampling

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/stats"
)

// The estimator generalizes core's order-statistic construction to
// design-selected samples. For a threshold v with population CDF value
// p = P(X ≤ v), the satisfied count of the AtMost property is
//
//	M(v) = Σ_t Bernoulli(q_t(p))
//
// where q_t is unit t's satisfaction probability under the design model.
// A unit measured as the g-th ranked of G candidates (RSS) has
// q = I_p(g, G−g+1), the Beta CDF of the g-th order statistic of G
// uniforms, and RSS units are independent — every unit ranks its own
// fresh candidate set — so M is an ordinary Poisson-binomial sum.
//
// Stratified units are not independent: all units cut at the quantiles
// of the same pilot pool share that pool's estimation error. If the
// pool's empirical composition at the threshold is J = #{pool ≤ v}
// out of B candidates, a unit drawn from stratum g — the rank band
// ((g−1)B/G, gB/G] of the pool — satisfies the property with the band
// fraction below the threshold,
//
//	q_g(J) = clamp(G·J/B − (g−1), 0, 1),
//
// and J ~ Binomial(B, p). Marginalizing J per unit (stratumCDF) gives
// the right per-unit probability, but treating units as independent at
// that marginal understates Var(M): when the pool misplaces a cutpoint
// it misplaces it for every unit at once. The honest-coverage sweep
// caught exactly this — the independent model's intervals under-covered
// at small n, where the whole sample shares one pool, and the error
// does not wash out with n while cutpoints stay frozen (which is why
// the collector re-cuts from the growing pool as pilots accumulate).
// The estimator therefore conditions: units cut at the first (smallest)
// pool are modeled jointly under the mixture over its composition J,
// while later units — whose pools are larger, so their shared error is
// second-order — enter through their own marginal. Ranking is never
// perfect either, so every model probability is tempered with a
// fidelity λ ∈ [0, 1]:
//
//	q_t = λ·q_model + (1−λ)·p
//
// which is exactly "the pilot ranked this unit correctly with
// probability λ, else it is a plain draw". At λ = 0 every q_t = p and
// M(v) is the plain Binomial(n, p) — the construction degrades to
// core's.
//
// Count distributions are built exactly by the O(n²) convolution in
// countDist; the stratified mixture adds a factor of B₁+1 only over the
// first-pool units, so the whole pmf stays ≤ O(B₁·n₁² + n²) — small
// against the adaptive loop's simulation cost. The one-sided tests then
// mirror smc.Confidence: a count m converges negative when m is below
// the mean and P(M > m) ≥ c, positive when m is at or above the mean
// and P(M < m) ≥ c — for the plain binomial these are exactly the
// Clopper–Pearson tails core uses (TestDesignBoundsMatchPlain pins the
// equivalence).
//
// Over a complete rank (or stratum) cycle the q_t average to p exactly:
// Σ_g I_p(g, G−g+1) = G·p for RSS, and Σ_g clamp(G·J/B − (g−1)) = G·J/B
// for every pool composition, whose Binomial mean is G·p — so the
// design never biases the count, it only changes M's concentration
// around the mean, which is what turns the same confidence level into a
// narrower (or, honestly, wider) interval.

// bandFrac is the fraction of stratum g's rank band — the continuous
// rank interval ((g−1)B/G, gB/G] of a B-candidate pool — lying at or
// below pool rank j. The clamp identity 1 − bandFrac(G, g, B−j, B) =
// bandFrac(G, G+1−g, j, B) holds exactly for every j and B, which is
// what keeps the AtLeast reflection exact per mixture component.
func bandFrac(G, g, j, B int) float64 {
	x := float64(G)*float64(j)/float64(B) - float64(g-1)
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// binomWeights returns the Binomial(B, p) pmf, computed outward from the
// mode by the ratio recurrence and normalized at the end, so it never
// under- or overflows regardless of B.
func binomWeights(B int, p float64) []float64 {
	w := make([]float64, B+1)
	if p <= 0 {
		w[0] = 1
		return w
	}
	if p >= 1 {
		w[B] = 1
		return w
	}
	mode := int(float64(B+1) * p)
	if mode > B {
		mode = B
	}
	w[mode] = 1
	r := p / (1 - p)
	for j := mode; j < B; j++ {
		w[j+1] = w[j] * float64(B-j) / float64(j+1) * r
	}
	for j := mode; j > 0; j-- {
		w[j-1] = w[j] * float64(j) / (float64(B-j+1) * r)
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// stratumCDF is the marginal satisfaction probability of a unit drawn
// from stratum g of G cut at the empirical quantiles of a B-candidate
// pilot pool: the expectation of bandFrac over the pool composition
// J ~ Binomial(B, p).
func stratumCDF(G, g int, p float64, B int) float64 {
	w := binomWeights(B, p)
	sum := 0.0
	for j, wj := range w {
		sum += wj * bandFrac(G, g, j, B)
	}
	return sum
}

// groupCDF returns the design-model satisfaction probability (before the
// fidelity mixture) for a unit of group g (1-based) among G at population
// CDF value p. block is the pilot pool size the stratified cutpoints
// were estimated from (ignored by RSS).
func groupCDF(d Design, G, g int, p float64, block int) float64 {
	switch d {
	case RSS:
		return numeric.BetaCDF(p, float64(g), float64(G-g+1))
	case Stratified:
		return stratumCDF(G, g, p, block)
	}
	return p
}

// qVector builds the per-unit marginal satisfaction probabilities at
// population CDF value p with fidelity lambda. reflected swaps every
// group g for G+1−g: the AtLeast property counts M'(v) = #{x ≥ v}, and
// a unit ranked g-th from below is ranked G+1−g-th from above —
// algebraically, 1 − q_g(1−p) = q_{G+1−g}(p) for both design models,
// and the identity survives the fidelity mixture.
func qVector(d Design, G int, groups []int, p, lambda float64, reflected bool, block int) []float64 {
	memo := make([]float64, G+1)
	for g := 1; g <= G; g++ {
		if lambda == 0 {
			memo[g] = p
			continue
		}
		eg := g
		if reflected {
			eg = G + 1 - g
		}
		memo[g] = lambda*groupCDF(d, G, eg, p, block) + (1-lambda)*p
	}
	q := make([]float64, len(groups))
	for i, g := range groups {
		q[i] = memo[g]
	}
	return q
}

// countDist returns the exact probability mass function of
// M = Σ_t Bernoulli(q_t) over 0..len(q), by incremental convolution.
func countDist(q []float64) []float64 {
	pmf := make([]float64, len(q)+1)
	pmf[0] = 1
	for t, qt := range q {
		for j := t + 1; j >= 1; j-- {
			pmf[j] = pmf[j]*(1-qt) + pmf[j-1]*qt
		}
		pmf[0] *= 1 - qt
	}
	return pmf
}

// designBoundsPMF is convergenceBounds for an arbitrary count pmf over
// 0..n with mean em: mNeg is the largest count with a converged negative
// verdict (m < E[M] and P(M > m) ≥ c), mPos the smallest with a
// converged positive one (m ≥ E[M] and P(M < m) ≥ c). Both tails are
// accumulated from their own end of the pmf, so neither loses precision
// to a 1−x subtraction. It returns core.ErrInsufficientSamples when
// either side cannot converge at all.
func designBoundsPMF(pmf []float64, em, c float64) (mNeg, mPos int, err error) {
	n := len(pmf) - 1
	if n < 1 {
		return 0, 0, fmt.Errorf("%w: empty sample", core.ErrInsufficientSamples)
	}
	// prefix[m] = P(M ≤ m); suffix[m] = P(M > m).
	prefix := make([]float64, n+1)
	suffix := make([]float64, n+1)
	acc := 0.0
	for m := 0; m <= n; m++ {
		acc += pmf[m]
		prefix[m] = acc
	}
	acc = 0
	for m := n - 1; m >= 0; m-- {
		acc += pmf[m+1]
		suffix[m] = acc
	}
	negOK := func(m int) bool { return float64(m) < em && suffix[m] >= c }
	posOK := func(m int) bool { return m > 0 && float64(m) >= em && prefix[m-1] >= c }
	if !negOK(0) {
		return 0, 0, fmt.Errorf("%w: even M=0 cannot assert negative at C=%v with N=%d under the design model",
			core.ErrInsufficientSamples, c, n)
	}
	if !posOK(n) {
		return 0, 0, fmt.Errorf("%w: even M=N cannot assert positive at C=%v with N=%d under the design model",
			core.ErrInsufficientSamples, c, n)
	}
	// negOK holds on a contiguous prefix of counts (suffix[m] is
	// non-increasing in m), posOK on a contiguous suffix (prefix[m−1] is
	// non-decreasing) — the same search structure as core.
	mNeg = sort.Search(n+1, func(m int) bool { return !negOK(m) }) - 1
	mPos = sort.Search(n+1, posOK)
	return mNeg, mPos, nil
}

// designBounds builds the Poisson-binomial count model for independent
// per-unit probabilities q and runs the convergence tests on it.
func designBounds(q []float64, c float64) (mNeg, mPos int, err error) {
	if len(q) == 0 {
		return 0, 0, fmt.Errorf("%w: empty sample", core.ErrInsufficientSamples)
	}
	em := 0.0
	for _, qt := range q {
		em += qt
	}
	return designBoundsPMF(countDist(q), em, c)
}

// stratifiedBounds builds the count pmf for a stratified sample whose
// units were cut at the quantiles of growing pilot pools. Units sharing
// the first (smallest) pool are modeled jointly: their probabilities are
// conditioned on that pool's composition J ~ Binomial(B₁, p), which is
// what carries the shared cutpoint error into the count's variance.
// Later units, whose pools are larger and whose shared error is
// correspondingly smaller, enter independently through their marginal
// stratumCDF. The two blocks convolve into the final pmf per mixture
// component.
func stratifiedBounds(groups, pools []int, G int, pF, lambda float64, reflected bool, c float64) (mNeg, mPos int, err error) {
	n := len(groups)
	b1 := pools[0]
	for _, b := range pools {
		if b < b1 {
			b1 = b
		}
	}
	eg := func(g int) int {
		if reflected {
			return G + 1 - g
		}
		return g
	}
	var era []int      // effective groups of first-pool units
	var late []float64 // marginal q of later units
	memo := map[[2]int]float64{}
	for i, g := range groups {
		if pools[i] == b1 {
			era = append(era, eg(g))
			continue
		}
		key := [2]int{eg(g), pools[i]}
		q, ok := memo[key]
		if !ok {
			q = lambda*stratumCDF(G, eg(g), pF, pools[i]) + (1-lambda)*pF
			memo[key] = q
		}
		late = append(late, q)
	}
	pmfLate := countDist(late)
	w := binomWeights(b1, pF)
	total := make([]float64, n+1)
	qe := make([]float64, len(era))
	for j, wj := range w {
		if wj == 0 {
			continue
		}
		for i, g := range era {
			qe[i] = lambda*bandFrac(G, g, j, b1) + (1-lambda)*pF
		}
		pe := countDist(qe)
		for a, pa := range pe {
			if pa == 0 {
				continue
			}
			wpa := wj * pa
			for b, pb := range pmfLate {
				total[a+b] += wpa * pb
			}
		}
	}
	em := 0.0
	for m, pm := range total {
		em += float64(m) * pm
	}
	return designBoundsPMF(total, em, c)
}

// designCI builds the confidence interval for samples whose unit t was
// measured under group groups[t] of the design; for the stratified
// design, pools[t] is the pilot pool size whose quantiles cut unit t's
// stratum (RSS passes nil). It mirrors core.ConfidenceIntervalSorted
// exactly — same side level, same order-statistic indexing, same
// AtLeast reflection — swapping only the count model. When the bounds
// are infeasible at the requested fidelity, it retries at λ = 0 (the
// plain binomial), which is feasible whenever the sample meets
// core.CIMinSamples; that fallback is what makes the plain minimum a
// valid DesignMinSamples.
func designCI(samples []float64, groups, pools []int, d Design, G int, lambda float64, p core.Params) (stats.Interval, error) {
	n := len(samples)
	if n == 0 {
		return stats.Interval{}, fmt.Errorf("%w: empty sample", core.ErrInsufficientSamples)
	}
	if n != len(groups) {
		return stats.Interval{}, fmt.Errorf("sampling: %d samples but %d group labels", n, len(groups))
	}
	if d == Stratified && len(pools) != n {
		return stats.Interval{}, fmt.Errorf("sampling: %d samples but %d pool sizes", n, len(pools))
	}
	c := p.SideLevel()
	reflected := p.Direction == core.AtLeast
	var mNeg, mPos int
	var err error
	if d == Stratified && lambda > 0 {
		mNeg, mPos, err = stratifiedBounds(groups, pools, G, p.F, lambda, reflected, c)
	} else {
		mNeg, mPos, err = designBounds(qVector(d, G, groups, p.F, lambda, reflected, 0), c)
	}
	if err != nil && lambda > 0 {
		mNeg, mPos, err = designBounds(qVector(d, G, groups, p.F, 0, reflected, 0), c)
	}
	if err != nil {
		return stats.Interval{}, err
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if reflected {
		return stats.Interval{Lo: sorted[n-mPos], Hi: sorted[n-1-mNeg]}, nil
	}
	return stats.Interval{Lo: sorted[mNeg], Hi: sorted[mPos-1]}, nil
}

// minFidelitySamples is the smallest measured sample from which a
// fidelity is estimated at all; below it the Spearman estimate is noise
// and the estimator stays at the plain-binomial λ = 0.
const minFidelitySamples = 8

// estimateFidelity estimates the ranking fidelity λ as the Spearman rank
// correlation between each measured unit's pilot proxy and its measured
// value, shrunk by 1/√n toward zero. The shrink direction is the safe
// one: an understated λ only widens the interval (toward the plain
// construction, which is coverage-correct on any sample), while an
// overstated λ would narrow it below nominal coverage. The honest-
// coverage suite is the empirical contract for this choice.
func estimateFidelity(proxy, value []float64) float64 {
	n := len(value)
	if n < minFidelitySamples || len(proxy) != n {
		return 0
	}
	lam := spearman(proxy, value) - 1/math.Sqrt(float64(n))
	if lam < 0 || math.IsNaN(lam) {
		return 0
	}
	if lam > maxFidelity {
		return maxFidelity
	}
	return lam
}

// estimateStratumFidelity estimates λ for the stratified design from
// realized stratum agreement: the fraction a of measured units whose
// value falls in the quantile band their pilot proxy assigned them to
// (bands taken from the measured sample's own midranks). Under the
// mixture model a unit obeys its assignment with probability λ and is a
// uniform draw otherwise, so E[a] = λ + (1−λ)/G; inverting and
// shrinking by 1/√n gives the estimate.
//
// Agreement measures the ranking channel only — whether the proxy puts
// units in the right band relative to each other. It is blind to the
// pool's cutpoint-placement error (a stratified sample agrees with its
// own bands almost by construction), which is exactly why that error is
// carried by the count model itself (stratifiedBounds' mixture over the
// pool composition) rather than by λ. Under Neyman allocation the
// measured sample is not self-weighted, which biases a — and therefore
// λ — downward; the bias direction is the safe one (wider intervals).
func estimateStratumFidelity(groups []int, value []float64, G int) float64 {
	n := len(value)
	if n < minFidelitySamples || len(groups) != n || G < 2 {
		return 0
	}
	ranks := midranks(value)
	agree := 0
	for i, r := range ranks {
		band := int(math.Ceil(r * float64(G) / float64(n)))
		if band < 1 {
			band = 1
		}
		if band > G {
			band = G
		}
		if band == groups[i] {
			agree++
		}
	}
	a := float64(agree) / float64(n)
	lam := (a-1/float64(G))/(1-1/float64(G)) - 1/math.Sqrt(float64(n))
	if lam < 0 || math.IsNaN(lam) {
		return 0
	}
	if lam > maxFidelity {
		return maxFidelity
	}
	return lam
}

// midranks returns 1-based ranks with ties averaged (midranks), the
// standard Spearman treatment.
func midranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && x[idx[j]] == x[idx[i]] {
			j++
		}
		mid := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			r[idx[k]] = mid
		}
		i = j
	}
	return r
}

// spearman returns the Spearman rank correlation of a and b (Pearson on
// midranks); 0 when either input is constant.
func spearman(a, b []float64) float64 {
	ra, rb := midranks(a), midranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}
