package sampling

import (
	"math"
	"testing"

	"repro/internal/core"
)

// binomPMF is the reference Binomial(n, p) pmf.
func binomPMF(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	for m := 0; m <= n; m++ {
		c := 1.0
		for i := 0; i < m; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		pmf[m] = c * math.Pow(p, float64(m)) * math.Pow(1-p, float64(n-m))
	}
	return pmf
}

func TestCountDistMatchesBinomial(t *testing.T) {
	n, p := 12, 0.3
	q := make([]float64, n)
	for i := range q {
		q[i] = p
	}
	got := countDist(q)
	want := binomPMF(n, p)
	for m := 0; m <= n; m++ {
		if math.Abs(got[m]-want[m]) > 1e-12 {
			t.Fatalf("pmf[%d] = %v, want %v", m, got[m], want[m])
		}
	}
}

func TestCountDistSumsToOne(t *testing.T) {
	q := []float64{0.1, 0.9, 0.5, 0.33, 0.77, 0.05}
	pmf := countDist(q)
	sum := 0.0
	for _, v := range pmf {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pmf sums to %v", sum)
	}
}

// TestDesignBoundsMatchPlain pins that at λ = 0 the design bounds equal
// core's plain order-statistic construction: the count model collapses
// to the same binomial, so the interval indices must match exactly.
func TestDesignBoundsMatchPlain(t *testing.T) {
	for _, d := range []Design{Stratified, RSS} {
		for _, n := range []int{29, 64, 120, 200} {
			for _, f := range []float64{0.5, 0.9} {
				for _, c := range []float64{0.9, 0.95} {
					p := core.Params{F: f, C: c}
					// Distinct integer samples make interval endpoints
					// recoverable as order-statistic indices.
					sorted := make([]float64, n)
					groups := make([]int, n)
					for i := range sorted {
						sorted[i] = float64(i)
						groups[i] = i%4 + 1
					}
					q := qVector(d, 4, groups, f, 0, false, 32)
					ref, err := core.ConfidenceIntervalSorted(sorted, p)
					if err != nil {
						// Below the plain minimum both constructions
						// must refuse.
						if _, _, derr := designBounds(q, p.SideLevel()); derr == nil {
							t.Errorf("%v n=%d f=%v c=%v: plain refused (%v) but design bounds converged", d, n, f, c, err)
						}
						continue
					}
					mNeg, mPos, err := designBounds(q, p.SideLevel())
					if err != nil {
						t.Fatalf("designBounds(%v n=%d f=%v c=%v): %v", d, n, f, c, err)
					}
					if got, want := sorted[mNeg], ref.Lo; got != want {
						t.Errorf("%v n=%d f=%v c=%v: Lo index %v, plain %v", d, n, f, c, got, want)
					}
					if got, want := sorted[mPos-1], ref.Hi; got != want {
						t.Errorf("%v n=%d f=%v c=%v: Hi index %v, plain %v", d, n, f, c, got, want)
					}
				}
			}
		}
	}
}

// TestQVectorReflection pins the AtLeast identity the estimator relies
// on: 1 − q_g(1−p) = q_{G+1−g}(p) for both design models, through the
// fidelity mixture.
func TestQVectorReflection(t *testing.T) {
	groups := []int{1, 2, 3, 4, 5, 1, 3}
	for _, d := range []Design{Stratified, RSS} {
		for _, lam := range []float64{0, 0.4, 0.95} {
			for _, p := range []float64{0.1, 0.5, 0.9} {
				plain := qVector(d, 5, groups, 1-p, lam, false, 40)
				refl := qVector(d, 5, groups, p, lam, true, 40)
				for i := range groups {
					if math.Abs(refl[i]-(1-plain[i])) > 1e-12 {
						t.Fatalf("%v λ=%v p=%v g=%d: reflected %v, want %v", d, lam, p, groups[i], refl[i], 1-plain[i])
					}
				}
			}
		}
	}
}

// TestQVectorCycleMean pins the centring property: over a complete group
// cycle the per-unit probabilities average exactly to p, so the design
// never biases the satisfied count.
func TestQVectorCycleMean(t *testing.T) {
	for _, d := range []Design{Stratified, RSS} {
		for _, G := range []int{2, 4, 7} {
			groups := make([]int, G)
			for g := 1; g <= G; g++ {
				groups[g-1] = g
			}
			for _, p := range []float64{0.2, 0.5, 0.9} {
				q := qVector(d, G, groups, p, 0.85, false, 8*G)
				sum := 0.0
				for _, v := range q {
					sum += v
				}
				if math.Abs(sum/float64(G)-p) > 1e-9 {
					t.Errorf("%v G=%d p=%v: cycle mean %v", d, G, p, sum/float64(G))
				}
			}
		}
	}
}

// TestDesignCINarrower checks the point of the whole exercise: with
// positive fidelity and cycling groups, the design interval on the same
// sample is never wider than the plain one, and strictly narrower at a
// realistic size.
func TestDesignCINarrower(t *testing.T) {
	p := core.Params{F: 0.5, C: 0.9}
	for _, d := range []Design{Stratified, RSS} {
		for _, n := range []int{60, 120, 240} {
			samples := make([]float64, n)
			groups := make([]int, n)
			pools := make([]int, n)
			for i := range samples {
				samples[i] = float64(i)
				groups[i] = i%4 + 1
				// Pools grow one 32-candidate block per 32 units, the
				// shape a real campaign produces.
				pools[i] = 32 * (i/32 + 1)
			}
			plain, err := core.ConfidenceInterval(samples, p)
			if err != nil {
				t.Fatal(err)
			}
			design, err := designCI(samples, groups, pools, d, 4, 0.9, p)
			if err != nil {
				t.Fatalf("%v n=%d: %v", d, n, err)
			}
			if design.Width() > plain.Width() {
				t.Errorf("%v n=%d: design width %v > plain %v", d, n, design.Width(), plain.Width())
			}
			if n >= 120 && design.Width() >= plain.Width() {
				t.Errorf("%v n=%d: design width %v not strictly narrower than plain %v", d, n, design.Width(), plain.Width())
			}
		}
	}
}

// TestDesignCIReflectionConsistency pins the AtLeast path against the
// reflect–solve–reflect identity: negating the sample turns "x ≥ v"
// into "−x ≤ −v" and a g-th-from-below unit into a g-th-from-above one,
// so AtLeast on (x, groups) must equal the negated AtMost interval on
// (−x, reflected groups).
func TestDesignCIReflectionConsistency(t *testing.T) {
	pAtLeast := core.Params{F: 0.7, C: 0.9, Direction: core.AtLeast}
	pAtMost := core.Params{F: 0.7, C: 0.9}
	const G = 3
	n := 100
	samples := make([]float64, n)
	groups := make([]int, n)
	pools := make([]int, n)
	neg := make([]float64, n)
	rgroups := make([]int, n)
	for i := range samples {
		samples[i] = math.Sin(float64(i) * 12.9898)
		groups[i] = i%G + 1
		pools[i] = 8 * G * (i/(8*G) + 1)
		neg[i] = -samples[i]
		rgroups[i] = G + 1 - groups[i]
	}
	for _, d := range []Design{Stratified, RSS} {
		got, err := designCI(samples, groups, pools, d, G, 0.8, pAtLeast)
		if err != nil {
			t.Fatalf("%v at-least: %v", d, err)
		}
		ref, err := designCI(neg, rgroups, pools, d, G, 0.8, pAtMost)
		if err != nil {
			t.Fatalf("%v reflected at-most: %v", d, err)
		}
		if math.Abs(got.Lo-(-ref.Hi)) > 1e-15 || math.Abs(got.Hi-(-ref.Lo)) > 1e-15 {
			t.Errorf("%v: at-least [%v, %v], reflected [%v, %v]", d, got.Lo, got.Hi, -ref.Hi, -ref.Lo)
		}
	}
}

// TestDesignCIFallsBackAtInfeasibleFidelity: at the plain minimum sample
// size the tempered model may not converge, but the λ = 0 fallback must,
// so designCI succeeds wherever the plain construction does.
func TestDesignCIFallbackFeasible(t *testing.T) {
	p := core.Params{F: 0.9, C: 0.9}
	minN, err := core.CIMinSamples(p)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, minN)
	groups := make([]int, minN)
	for i := range samples {
		samples[i] = float64(i)
		groups[i] = i%4 + 1
	}
	if _, err := designCI(samples, groups, nil, RSS, 4, maxFidelity, p); err != nil {
		t.Fatalf("designCI at plain minimum n=%d: %v", minN, err)
	}
}

func TestSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := spearman(a, []float64{10, 20, 30, 40, 50}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect: %v", got)
	}
	if got := spearman(a, []float64{50, 40, 30, 20, 10}); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed: %v", got)
	}
	if got := spearman(a, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Errorf("constant: %v", got)
	}
	// Ties use midranks: both vectors tie the middle pair identically, so
	// correlation stays 1.
	if got := spearman([]float64{1, 2, 2, 3}, []float64{5, 6, 6, 9}); math.Abs(got-1) > 1e-12 {
		t.Errorf("tied: %v", got)
	}
}

func TestEstimateFidelity(t *testing.T) {
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) * 2
	}
	if got, want := estimateFidelity(a, b), 1-1/math.Sqrt(float64(n)); math.Abs(got-want) > 1e-12 {
		t.Errorf("perfect proxy: λ = %v, want %v", got, want)
	}
	for i := range b {
		b[i] = -a[i]
	}
	if got := estimateFidelity(a, b); got != 0 {
		t.Errorf("anti-correlated proxy: λ = %v, want 0", got)
	}
	if got := estimateFidelity(a[:4], b[:4]); got != 0 {
		t.Errorf("tiny sample: λ = %v, want 0", got)
	}
}

func TestEstimateStratumFidelity(t *testing.T) {
	const n, G = 120, 3
	groups := make([]int, n)
	values := make([]float64, n)
	// Perfect assignment: unit i's value sits exactly in the quantile
	// band of its group. Agreement 1 inverts to λ = 1, minus shrinkage.
	for i := range values {
		groups[i] = i*G/n + 1
		values[i] = float64(i)
	}
	want := 1 - 1/math.Sqrt(float64(n))
	if got := estimateStratumFidelity(groups, values, G); math.Abs(got-want) > 1e-12 {
		t.Errorf("perfect assignment: λ = %v, want %v", got, want)
	}

	// Round-robin assignment uncorrelated with value: agreement ≈ 1/G,
	// which inverts to λ ≈ 0 and shrinks to exactly 0.
	for i := range values {
		groups[i] = i%G + 1
	}
	if got := estimateStratumFidelity(groups, values, G); got != 0 {
		t.Errorf("uninformative assignment: λ = %v, want 0", got)
	}

	// Partially obedient assignment: two thirds of the units follow
	// their band, one third is sent to the wrong one. Agreement 2/3
	// inverts to λ = 0.5 before shrinkage — well below what a global
	// rank correlation would report for the same data, which is the
	// point: agreement punishes band disobedience directly.
	for i := range values {
		if i < n/2 {
			groups[i] = i*G/n + 1
		} else {
			groups[i] = G - i*G/n
		}
	}
	got := estimateStratumFidelity(groups, values, G)
	if got <= 0 || got >= 0.5 {
		t.Errorf("half-obedient assignment: λ = %v, want in (0, 0.5)", got)
	}

	if got := estimateStratumFidelity(groups[:4], values[:4], G); got != 0 {
		t.Errorf("tiny sample: λ = %v, want 0", got)
	}
}
