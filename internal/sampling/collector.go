package sampling

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/popcache"
	"repro/internal/population"
	"repro/internal/stats"
)

// Metric names under which cached measured populations carry the design
// bookkeeping alongside the value vector, so a cache hit reconstructs
// every unit — seed, group and proxy — without re-running the pilot.
const (
	// MetricProxy is each measured unit's pilot proxy value.
	MetricProxy = "sampling_proxy"
	// MetricGroup is each measured unit's 1-based rank (RSS) or stratum
	// (stratified).
	MetricGroup = "sampling_group"
	// MetricSeedOffset is each measured unit's seed offset from the
	// campaign base seed. Offsets stay far below 2^53, so the float64
	// vector is exact.
	MetricSeedOffset = "sampling_seed_offset"
	// MetricPool is the pilot pool size whose quantiles cut each
	// measured unit's stratum (stratified; zero for RSS). The estimator
	// needs it to weigh the shared cutpoint error, so populations cached
	// before it existed miss and are regenerated.
	MetricPool = "sampling_pool"
)

// ErrNonContiguous reports a Collect call whose base seed does not extend
// the collector's cumulative range — design collectors are stateful over
// one campaign and cannot serve disjoint ranges.
var ErrNonContiguous = errors.New("sampling: collection is not contiguous from the campaign base seed")

// maxPilotPool bounds the pilot runs one campaign may consume, a guard
// against a degenerate stratification (e.g. a constant proxy putting
// every candidate in one stratum) looping the pilot forever.
const maxPilotPool = 1 << 20

// unit is one full-scale measurement and the design bookkeeping behind
// it.
type unit struct {
	offset uint64  // seed offset from the campaign base seed
	group  int     // 1-based rank (RSS) or stratum (stratified)
	pool   int     // pilot pool size at selection (stratified; 0 for RSS)
	proxy  float64 // pilot proxy value of the measured seed
	value  float64 // full-scale measured value
}

// Stats counts what a design collector actually spent.
type Stats struct {
	PilotRuns int // pilot executions fetched through the PilotFunc
	FullRuns  int // full-scale executions run through the backing collector
	CacheHits int // collection rounds served from the measured-population cache
	// Fidelity is the λ the last DesignInterval used (estimated or
	// fixed); zero before the first interval.
	Fidelity float64
}

// Collector implements core.DesignCollector for the stratified and RSS
// designs over any backing core.Collector. It is stateful: one Collector
// serves one campaign, extending a single contiguous unit sequence
// rooted at the first Collect's base seed (the adaptive loop's
// refinement rounds do exactly this). It is safe for concurrent use,
// though rounds are inherently sequential.
type Collector struct {
	opts  Options
	full  core.Collector
	pilot PilotFunc

	mu        sync.Mutex
	err       error // first state-corrupting failure; poisons the campaign
	started   bool
	firstBase uint64
	units     []unit
	pilotVals []float64 // proxy values for pilot seeds firstBase+0, +1, …

	// Stratified selection state. The stratification is re-cut from the
	// entire pilot pool every time it grows (see restratify), so the
	// cutpoint error shrinks as the campaign spends more pilots instead
	// of staying frozen at the first block's O(1/√B) accuracy.
	targets   []float64 // Neyman allocation weights (nil = proportional)
	binCounts []int     // measured units per stratum
	binQ      [][]int   // per-stratum FIFO of unmeasured pilot offsets
	taken     []bool    // pilot offsets already measured

	stats Stats
}

// New builds a design collector over full, using pilot for the proxy
// pass. See Options for the knobs; Plain is rejected.
func New(opts Options, full core.Collector, pilot PilotFunc) (*Collector, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if full == nil {
		return nil, errors.New("sampling: nil backing collector")
	}
	if pilot == nil {
		return nil, errors.New("sampling: nil pilot function")
	}
	return &Collector{opts: opts, full: full, pilot: pilot}, nil
}

// Design returns the collector's design.
func (s *Collector) Design() Design { return s.opts.Design }

// Stats returns a copy of the spend counters.
func (s *Collector) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Collect implements core.Collector: it returns n full-scale samples for
// n design-selected seeds from the campaign range, in selection order.
// Successive calls must extend the same range (baseSeed = previous base
// + previous count), exactly as the adaptive loop's refinement rounds
// do.
func (s *Collector) Collect(baseSeed uint64, n, batch int, h core.Hooks) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampling: non-positive sample count %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	if !s.started {
		s.started, s.firstBase = true, baseSeed
	} else if want := s.firstBase + uint64(len(s.units)); baseSeed != want {
		return nil, fmt.Errorf("%w: got base seed %d, want %d", ErrNonContiguous, baseSeed, want)
	}
	t0 := len(s.units)
	t1 := t0 + n
	if !s.tryCache(t1) {
		if err := s.extend(t1, batch, h); err != nil {
			// Selection state (consumed stratum queues, half-appended
			// units) cannot be rolled back deterministically, so the
			// campaign is poisoned rather than left silently divergent.
			s.err = err
			return nil, err
		}
		s.putCache(t1)
	}
	out := make([]float64, n)
	for i := t0; i < t1; i++ {
		out[i-t0] = s.units[i].value
	}
	return out, nil
}

// extend selects units t0..t1 and measures them at full scale.
func (s *Collector) extend(t1, batch int, h core.Hooks) error {
	t0 := len(s.units)
	var err error
	if s.opts.Design == RSS {
		err = s.selectRSS(t1)
	} else {
		err = s.selectStratified(t1)
	}
	if err != nil {
		return err
	}
	return s.measure(t0, t1, batch, h)
}

// selectRSS appends units up to t1. Unit t draws its candidate set from
// pilot offsets t·k .. t·k+k−1 and measures the candidate the pilot
// ranks (t mod k)+1-th smallest — cycling the rank keeps the mean of the
// per-unit satisfaction probabilities exactly at the plain p over every
// complete cycle, so the estimator's count model is centred.
func (s *Collector) selectRSS(t1 int) error {
	k := s.opts.Strata
	if err := s.ensurePilots(t1 * k); err != nil {
		return err
	}
	for t := len(s.units); t < t1; t++ {
		base := t * k
		r := t%k + 1
		j := rankSelect(s.pilotVals[base:base+k], r)
		s.units = append(s.units, unit{offset: uint64(base + j), group: r, proxy: s.pilotVals[base+j]})
	}
	return nil
}

// rankSelect returns the index of the r-th smallest value (1-based),
// breaking ties by index so selection is deterministic.
func rankSelect(set []float64, r int) int {
	idx := make([]int, len(set))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if set[idx[a]] != set[idx[b]] {
			return set[idx[a]] < set[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[r-1]
}

// selectStratified appends units up to t1, drawing each from the stratum
// the allocation rule picks next, in pilot seed order within a stratum.
func (s *Collector) selectStratified(t1 int) error {
	if s.binQ == nil {
		if err := s.ensurePilots(s.opts.PilotBlock); err != nil {
			return err
		}
		s.binCounts = make([]int, s.opts.Strata)
		s.restratify()
		if len(s.units) > 0 {
			// Earlier rounds were cache-served without a pilot pass;
			// replay the deterministic selection over them to restore
			// the queues (pilot values come back from the pilot cache,
			// so this costs no simulation on a warm cache).
			if err := s.replayStratified(); err != nil {
				return err
			}
		}
	}
	for t := len(s.units); t < t1; t++ {
		g := s.nextStratum(t)
		off, err := s.popStratum(g)
		if err != nil {
			return err
		}
		s.units = append(s.units, unit{
			offset: uint64(off), group: g + 1, pool: len(s.pilotVals), proxy: s.pilotVals[off],
		})
		s.binCounts[g]++
	}
	return nil
}

// restratify re-cuts the stratification from the entire pilot pool:
// every candidate — measured or not — is assigned to a stratum by rank
// position within the pool, and the queues are rebuilt from the
// unmeasured candidates in seed order. Rank-position assignment, not
// cutpoint compare, keeps the strata balanced even when the proxy is
// heavily tied. Neyman weights are refreshed from the full pool at the
// same time. Everything is a pure function of the pilot value stream,
// so selection stays deterministic and scheduling-independent.
func (s *Collector) restratify() {
	B := len(s.pilotVals)
	L := s.opts.Strata
	idx := make([]int, B)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if s.pilotVals[idx[a]] != s.pilotVals[idx[b]] {
			return s.pilotVals[idx[a]] < s.pilotVals[idx[b]]
		}
		return idx[a] < idx[b]
	})
	binOf := make([]int, B)
	for rp, j := range idx {
		binOf[j] = rp * L / B
	}
	s.binQ = make([][]int, L)
	for len(s.taken) < B {
		s.taken = append(s.taken, false)
	}
	for j := 0; j < B; j++ {
		if !s.taken[j] {
			s.binQ[binOf[j]] = append(s.binQ[binOf[j]], j)
		}
	}
	if s.opts.Allocation == Neyman {
		s.targets = neymanWeights(s.pilotVals, binOf, L)
	}
}

// neymanWeights returns allocation weights proportional to the
// within-stratum proxy standard deviation, floored at half an equal
// share so no stratum starves, and normalized to sum 1. A constant
// proxy (all deviations zero) falls back to proportional (nil).
func neymanWeights(vals []float64, binOf []int, L int) []float64 {
	sum := make([]float64, L)
	sumSq := make([]float64, L)
	cnt := make([]float64, L)
	for j, v := range vals {
		h := binOf[j]
		sum[h] += v
		sumSq[h] += v * v
		cnt[h]++
	}
	w := make([]float64, L)
	total := 0.0
	for h := 0; h < L; h++ {
		if cnt[h] > 0 {
			mean := sum[h] / cnt[h]
			varr := sumSq[h]/cnt[h] - mean*mean
			if varr > 0 {
				w[h] = math.Sqrt(varr)
			}
		}
		total += w[h]
	}
	if total == 0 {
		return nil
	}
	floor := 0.5 * total / float64(L)
	total = 0
	for h := 0; h < L; h++ {
		if w[h] < floor {
			w[h] = floor
		}
		total += w[h]
	}
	for h := 0; h < L; h++ {
		w[h] /= total
	}
	return w
}

// nextStratum picks the stratum for unit t (0-based stratum index):
// cycling under proportional allocation, largest cumulative deficit
// against the targets under Neyman (ties to the lowest stratum, so the
// choice is deterministic).
func (s *Collector) nextStratum(t int) int {
	L := s.opts.Strata
	if s.targets == nil {
		return t % L
	}
	best, bestDef := 0, s.targets[0]*float64(t+1)-float64(s.binCounts[0])
	for h := 1; h < L; h++ {
		if def := s.targets[h]*float64(t+1) - float64(s.binCounts[h]); def > bestDef {
			best, bestDef = h, def
		}
	}
	return best
}

// popStratum takes the next unmeasured pilot offset from stratum g,
// fetching further pilot blocks — and re-cutting the stratification
// over the grown pool — until the stratum has a candidate. The offset
// is marked measured so later re-cuts skip it.
func (s *Collector) popStratum(g int) (int, error) {
	for len(s.binQ[g]) == 0 {
		if len(s.pilotVals) >= maxPilotPool {
			return 0, fmt.Errorf("sampling: stratum %d still empty after %d pilot runs (degenerate proxy stratification)", g+1, len(s.pilotVals))
		}
		if err := s.ensurePilots(len(s.pilotVals) + s.opts.PilotBlock); err != nil {
			return 0, err
		}
		s.restratify()
	}
	off := s.binQ[g][0]
	s.binQ[g] = s.binQ[g][1:]
	s.taken[off] = true
	return off, nil
}

// replayStratified re-runs the selection algorithm over units restored
// from the measured-population cache, consuming the stratum queues
// exactly as the original campaign did, and verifies the replay agrees
// with the cached record — a divergence means the cache entry does not
// belong to this design configuration.
func (s *Collector) replayStratified() error {
	for t, u := range s.units {
		g := s.nextStratum(t)
		off, err := s.popStratum(g)
		if err != nil {
			return err
		}
		if uint64(off) != u.offset || g+1 != u.group || len(s.pilotVals) != u.pool {
			return fmt.Errorf("sampling: cached population diverges from design replay at unit %d (offset %d vs %d, stratum %d vs %d, pool %d vs %d)",
				t, u.offset, off, u.group, g+1, u.pool, len(s.pilotVals))
		}
		s.binCounts[g]++
	}
	return nil
}

// ensurePilots grows the pilot value vector to at least m entries, in
// whole PilotBlock-aligned fetches so a caching PilotFunc always sees
// the same block-aligned recipes.
func (s *Collector) ensurePilots(m int) error {
	for len(s.pilotVals) < m {
		base := s.firstBase + uint64(len(s.pilotVals))
		vals, err := s.pilot(base, s.opts.PilotBlock)
		if err != nil {
			return fmt.Errorf("sampling: pilot pass at base seed %d: %w", base, err)
		}
		if len(vals) != s.opts.PilotBlock {
			return &core.CollectionSizeError{BaseSeed: base, Requested: s.opts.PilotBlock, Returned: len(vals)}
		}
		s.pilotVals = append(s.pilotVals, vals...)
		s.stats.PilotRuns += len(vals)
	}
	return nil
}

// span is a run of consecutive measured seeds, coalesced so the backing
// collector sees ranged requests instead of per-seed ones.
type span struct {
	base  uint64 // absolute seed
	count int
}

// measure runs the full-scale executions for units t0..t1 through the
// backing collector and fills in their values. Selected seeds are
// sorted, coalesced into consecutive spans and issued with at most
// batch spans in flight (each span honouring batch internally), so the
// caller's parallelism bound is approximate across spans but the
// values — keyed by seed — are independent of scheduling.
func (s *Collector) measure(t0, t1, batch int, h core.Hooks) error {
	seeds := make([]uint64, 0, t1-t0)
	pos := make(map[uint64]int, t1-t0)
	for i := t0; i < t1; i++ {
		seed := s.firstBase + s.units[i].offset
		seeds = append(seeds, seed)
		pos[seed] = i
	}
	sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
	var spans []span
	for _, seed := range seeds {
		if k := len(spans) - 1; k >= 0 && spans[k].base+uint64(spans[k].count) == seed {
			spans[k].count++
		} else {
			spans = append(spans, span{base: seed, count: 1})
		}
	}

	workers := batch
	if workers <= 0 || workers > len(spans) {
		workers = len(spans)
		if workers > 16 {
			workers = 16
		}
	}
	type spanResult struct {
		idx  int
		vals []float64
		err  error
	}
	jobs := make(chan int)
	results := make([]spanResult, len(spans))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for k := range jobs {
				vals, err := s.full.Collect(spans[k].base, spans[k].count, batch, h)
				if err == nil && len(vals) != spans[k].count {
					err = &core.CollectionSizeError{BaseSeed: spans[k].base, Requested: spans[k].count, Returned: len(vals)}
				}
				results[k] = spanResult{idx: k, vals: vals, err: err}
			}
		}()
	}
	for k := range spans {
		jobs <- k
	}
	close(jobs)
	wg.Wait()

	var errs []error
	for k, res := range results {
		if res.err != nil {
			errs = append(errs, fmt.Errorf("sampling: measuring seeds %d..%d: %w",
				spans[k].base, spans[k].base+uint64(spans[k].count)-1, res.err))
			continue
		}
		for i, v := range res.vals {
			s.units[pos[spans[k].base+uint64(i)]].value = v
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	s.stats.FullRuns += len(seeds)
	return nil
}

// cacheKey is the content address of the cumulative measured population
// after runs units: the caller's base recipe plus everything that
// influences seed selection.
func (s *Collector) cacheKey(runs int) popcache.Key {
	k := s.opts.Recipe
	k.BaseSeed = s.firstBase
	k.Runs = runs
	k.Design = s.opts.Design.String()
	k.Strata = s.opts.Strata
	if s.opts.Design == Stratified {
		k.Allocation = s.opts.Allocation.String()
	}
	k.PilotRuns = s.opts.PilotBlock
	k.Fidelity = s.opts.Fidelity
	return k
}

// tryCache serves units up to t1 from the measured-population cache.
// The cached vectors are validated in full — including against the
// units this collector already holds — before anything is appended, so
// a damaged or foreign entry degrades to a miss, never to divergence.
func (s *Collector) tryCache(t1 int) bool {
	if s.opts.Cache == nil {
		return false
	}
	pop := s.opts.Cache.Get(s.cacheKey(t1))
	if pop == nil || pop.Runs != t1 {
		return false
	}
	vals, err1 := pop.Metric(s.opts.Metric)
	proxies, err2 := pop.Metric(MetricProxy)
	groups, err3 := pop.Metric(MetricGroup)
	offs, err4 := pop.Metric(MetricSeedOffset)
	pools, err5 := pop.Metric(MetricPool)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil ||
		len(vals) != t1 || len(proxies) != t1 || len(groups) != t1 || len(offs) != t1 || len(pools) != t1 {
		return false
	}
	for i, u := range s.units {
		if uint64(offs[i]) != u.offset || int(groups[i]) != u.group || int(pools[i]) != u.pool || proxies[i] != u.proxy || vals[i] != u.value {
			return false
		}
	}
	fresh := make([]unit, 0, t1-len(s.units))
	for i := len(s.units); i < t1; i++ {
		g := int(groups[i])
		if g < 1 || g > s.opts.Strata || float64(g) != groups[i] || offs[i] < 0 || offs[i] != float64(uint64(offs[i])) ||
			pools[i] < 0 || pools[i] != float64(int(pools[i])) {
			return false
		}
		fresh = append(fresh, unit{offset: uint64(offs[i]), group: g, pool: int(pools[i]), proxy: proxies[i], value: vals[i]})
	}
	s.units = append(s.units, fresh...)
	s.stats.CacheHits++
	return true
}

// putCache stores the cumulative measured population after t1 units.
// Errors are dropped: caching is an optimization, never a correctness
// dependency.
func (s *Collector) putCache(t1 int) {
	if s.opts.Cache == nil {
		return
	}
	m := map[string][]float64{
		s.opts.Metric:    make([]float64, t1),
		MetricProxy:      make([]float64, t1),
		MetricGroup:      make([]float64, t1),
		MetricSeedOffset: make([]float64, t1),
		MetricPool:       make([]float64, t1),
	}
	for i, u := range s.units[:t1] {
		m[s.opts.Metric][i] = u.value
		m[MetricProxy][i] = u.proxy
		m[MetricGroup][i] = float64(u.group)
		m[MetricSeedOffset][i] = float64(u.offset)
		m[MetricPool][i] = float64(u.pool)
	}
	pop := &population.Population{
		Benchmark: s.opts.Recipe.Benchmark,
		Runs:      t1,
		BaseSeed:  s.firstBase,
		Metrics:   m,
	}
	_ = s.opts.Cache.Put(s.cacheKey(t1), pop)
}

// DesignInterval implements core.DesignCollector: the confidence
// interval matched to the design, over exactly the cumulative samples
// this collector's Collect calls returned.
func (s *Collector) DesignInterval(samples []float64, p core.Params) (stats.Interval, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(samples)
	if n == 0 {
		return stats.Interval{}, fmt.Errorf("%w: empty sample", core.ErrInsufficientSamples)
	}
	if n > len(s.units) {
		return stats.Interval{}, fmt.Errorf("sampling: interval over %d samples but only %d collected", n, len(s.units))
	}
	groups := make([]int, n)
	var pools []int
	if s.opts.Design == Stratified {
		pools = make([]int, n)
	}
	for i := range groups {
		if samples[i] != s.units[i].value {
			return stats.Interval{}, fmt.Errorf("sampling: sample %d is not this collector's collection-order output", i)
		}
		groups[i] = s.units[i].group
		if pools != nil {
			pools[i] = s.units[i].pool
		}
	}
	lam := s.opts.Fidelity
	if lam == 0 {
		switch s.opts.Design {
		case Stratified:
			// Stratum agreement, not Spearman: the stratified count
			// model only cares whether units land in their assigned
			// band, and global rank correlation overstates that near
			// the cutpoints (see estimateStratumFidelity).
			lam = estimateStratumFidelity(groups, samples, s.opts.Strata)
		default:
			proxies := make([]float64, n)
			values := make([]float64, n)
			for i, u := range s.units[:n] {
				proxies[i], values[i] = u.proxy, u.value
			}
			lam = estimateFidelity(proxies, values)
		}
	}
	s.stats.Fidelity = lam
	return designCI(samples, groups, pools, s.opts.Design, s.opts.Strata, lam, p)
}

// DesignMinSamples implements core.DesignCollector. At λ = 0 the
// design's count model is exactly the plain binomial, and designCI falls
// back to λ = 0 whenever the tempered model cannot converge, so the
// plain minimum is a valid (conservative) minimum for the design.
func (s *Collector) DesignMinSamples(p core.Params) (int, error) {
	return core.CIMinSamples(p)
}
