package sampling

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/popcache"
)

// synthValue is a deterministic uniform-ish metric on [0, 1).
func synthValue(seed uint64) float64 {
	return float64(seed * 2654435761 % 1000003) / 1000003
}

// synthProxy is a noisy but rank-correlated pilot proxy for synthValue.
func synthProxy(seed uint64) float64 {
	return synthValue(seed) + 0.05*math.Sin(float64(seed))
}

// countingBackend counts full-scale runs and records every seed served.
type countingBackend struct {
	runs  atomic.Int64
	calls atomic.Int64
}

func (b *countingBackend) collector() core.Collector {
	return core.FuncCollector(func(seed uint64) (float64, error) {
		b.runs.Add(1)
		return synthValue(seed), nil
	})
}

func (b *countingBackend) pilot() PilotFunc {
	inner := core.FuncCollector(func(seed uint64) (float64, error) { return synthProxy(seed), nil })
	return func(baseSeed uint64, n int) ([]float64, error) {
		b.calls.Add(1)
		return inner.Collect(baseSeed, n, 0, core.Hooks{})
	}
}

func testOptions(d Design) Options {
	return Options{Design: d, Strata: 3}
}

func mustNew(t *testing.T, opts Options, b *countingBackend) *Collector {
	t.Helper()
	c, err := New(opts, b.collector(), b.pilot())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// collectRounds drives nRounds Collect calls of size per and returns the
// concatenated samples.
func collectRounds(t *testing.T, c *Collector, base uint64, nRounds, per, batch int) []float64 {
	t.Helper()
	var all []float64
	for r := 0; r < nRounds; r++ {
		got, err := c.Collect(base+uint64(len(all)), per, batch, core.Hooks{})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if len(got) != per {
			t.Fatalf("round %d: %d samples, want %d", r, len(got), per)
		}
		all = append(all, got...)
	}
	return all
}

// TestRSSSelection pins the ranked-set construction on a perfectly
// ranking proxy: unit t measures the (t mod k)+1-th smallest of its own
// k-candidate set, so with proxy ≡ value the returned sample is exactly
// that order statistic of the candidate values.
func TestRSSSelection(t *testing.T) {
	b := &countingBackend{}
	opts := testOptions(RSS)
	c, err := New(opts, b.collector(), func(baseSeed uint64, n int) ([]float64, error) {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = synthValue(baseSeed + uint64(i)) // perfect proxy
		}
		return vals, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const base, n, k = 500, 9, 3
	got := collectRounds(t, c, base, 1, n, 4)
	for u := 0; u < n; u++ {
		set := []float64{synthValue(base + uint64(u*k)), synthValue(base + uint64(u*k+1)), synthValue(base + uint64(u*k+2))}
		r := u%k + 1
		// r-th smallest of the candidate set
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if set[j] < set[i] {
					set[i], set[j] = set[j], set[i]
				}
			}
		}
		if got[u] != set[r-1] {
			t.Errorf("unit %d: got %v, want rank-%d value %v", u, got[u], r, set[r-1])
		}
	}
	st := c.Stats()
	if st.FullRuns != n {
		t.Errorf("full runs %d, want %d", st.FullRuns, n)
	}
	if st.PilotRuns < n*k {
		t.Errorf("pilot runs %d, want ≥ %d", st.PilotRuns, n*k)
	}
}

// TestStratifiedCoversStrata checks the proportional schedule cycles all
// strata and that selected units' proxies respect the cutpoints (later
// blocks are binned by cutpoint compare).
func TestStratifiedCoversStrata(t *testing.T) {
	b := &countingBackend{}
	c := mustNew(t, testOptions(Stratified), b)
	const n = 30
	collectRounds(t, c, 7000, 1, n, 8)
	counts := map[int]int{}
	for _, u := range c.units {
		counts[u.group]++
	}
	for g := 1; g <= 3; g++ {
		if counts[g] != n/3 {
			t.Errorf("stratum %d measured %d times, want %d", g, counts[g], n/3)
		}
	}
}

// TestDeterminismAcrossBatch pins scheduling independence: the same
// campaign collected with batch 1 and batch 8 yields bit-identical
// samples, for both designs and across refinement rounds.
func TestDeterminismAcrossBatch(t *testing.T) {
	for _, d := range []Design{Stratified, RSS} {
		a := collectRounds(t, mustNew(t, testOptions(d), &countingBackend{}), 42, 3, 17, 1)
		bb := collectRounds(t, mustNew(t, testOptions(d), &countingBackend{}), 42, 3, 17, 8)
		cc := collectRounds(t, mustNew(t, testOptions(d), &countingBackend{}), 42, 3, 17, 0)
		for i := range a {
			if a[i] != bb[i] || a[i] != cc[i] {
				t.Fatalf("%v: sample %d differs across batch sizes: %v %v %v", d, i, a[i], bb[i], cc[i])
			}
		}
	}
}

func TestNonContiguousRejected(t *testing.T) {
	c := mustNew(t, testOptions(RSS), &countingBackend{})
	if _, err := c.Collect(100, 6, 0, core.Hooks{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Collect(200, 6, 0, core.Hooks{}); !errors.Is(err, ErrNonContiguous) {
		t.Fatalf("disjoint base: got %v, want ErrNonContiguous", err)
	}
	// The correct continuation still works.
	if _, err := c.Collect(106, 6, 0, core.Hooks{}); err != nil {
		t.Fatal(err)
	}
}

func TestShortPilotPoisons(t *testing.T) {
	b := &countingBackend{}
	c, err := New(testOptions(RSS), b.collector(), func(baseSeed uint64, n int) ([]float64, error) {
		return make([]float64, n-1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Collect(0, 6, 0, core.Hooks{})
	var sizeErr *core.CollectionSizeError
	if !errors.As(err, &sizeErr) {
		t.Fatalf("short pilot: got %v, want CollectionSizeError", err)
	}
	// The campaign is poisoned: the same error comes back without
	// re-running anything.
	if _, err2 := c.Collect(6, 6, 0, core.Hooks{}); !errors.As(err2, &sizeErr) {
		t.Fatalf("poisoned collector: got %v", err2)
	}
}

// TestMeasuredPopulationCache pins the popcache integration: an
// identical second campaign is served without a single pilot or
// full-scale run, and extending past the cached rounds (the stratified
// replay path) matches an uncached reference bit for bit.
func TestMeasuredPopulationCache(t *testing.T) {
	for _, d := range []Design{Stratified, RSS} {
		cache := popcache.New("", 0)
		recipe := popcache.Key{Benchmark: "synthetic", Scale: 1, PilotScale: 0.25, ProxyMetric: "proxy"}
		opts := testOptions(d)
		opts.Cache = cache
		opts.Recipe = recipe

		warm := &countingBackend{}
		a := collectRounds(t, mustNew(t, opts, warm), 42, 2, 15, 4)

		cold := &countingBackend{}
		cc := mustNew(t, opts, cold)
		b := collectRounds(t, cc, 42, 2, 15, 4)
		if cold.runs.Load() != 0 || cold.calls.Load() != 0 {
			t.Fatalf("%v: cache-served campaign ran %d full + %d pilot calls", d, cold.runs.Load(), cold.calls.Load())
		}
		if cc.Stats().CacheHits != 2 {
			t.Fatalf("%v: %d cache hits, want 2", d, cc.Stats().CacheHits)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: cached sample %d = %v, want %v", d, i, b[i], a[i])
			}
		}

		// Extend the cache-served campaign one more round; it must match
		// an uncached reference campaign of three rounds.
		ext, err := cc.Collect(42+30, 15, 4, core.Hooks{})
		if err != nil {
			t.Fatalf("%v: extending past cached rounds: %v", d, err)
		}
		refOpts := testOptions(d)
		ref := collectRounds(t, mustNew(t, refOpts, &countingBackend{}), 42, 3, 15, 4)
		for i, v := range ext {
			if v != ref[30+i] {
				t.Fatalf("%v: extended sample %d = %v, want %v", d, i, v, ref[30+i])
			}
		}
	}
}

// TestDesignIntervalValidatesSamples: the interval only accepts the
// collector's own cumulative output.
func TestDesignIntervalValidatesSamples(t *testing.T) {
	c := mustNew(t, testOptions(RSS), &countingBackend{})
	got := collectRounds(t, c, 0, 1, 30, 0)
	p := core.Params{F: 0.5, C: 0.9}
	if _, err := c.DesignInterval(got, p); err != nil {
		t.Fatalf("own samples rejected: %v", err)
	}
	bad := append([]float64(nil), got...)
	bad[3] += 1
	if _, err := c.DesignInterval(bad, p); err == nil {
		t.Fatal("foreign samples accepted")
	}
	if _, err := c.DesignInterval(make([]float64, 99), p); err == nil {
		t.Fatal("overlong sample accepted")
	}
}

// TestAdaptiveLoopIntegration drives core.AnalyzeToWidthWith end to end
// over a design collector: the analysis must converge, route its
// interval through DesignInterval, and account every sample to a
// full-scale run.
func TestAdaptiveLoopIntegration(t *testing.T) {
	for _, d := range []Design{Stratified, RSS} {
		b := &countingBackend{}
		c := mustNew(t, testOptions(d), b)
		p := core.Params{F: 0.5, C: 0.9}
		an, err := core.AnalyzeToWidthWith(c, p, core.WidthOptions{
			TargetWidth: 0.2,
			BaseSeed:    1000,
			Batch:       8,
			MaxSamples:  2048,
		})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if an.Interval.Width() > 0.2 {
			t.Errorf("%v: width %v above target", d, an.Interval.Width())
		}
		st := c.Stats()
		if st.FullRuns != len(an.Samples) {
			t.Errorf("%v: %d full runs for %d samples", d, st.FullRuns, len(an.Samples))
		}
		// The interval must be the design one, not the plain construction.
		want, err := c.DesignInterval(an.Samples, p)
		if err != nil {
			t.Fatal(err)
		}
		if an.Interval != want {
			t.Errorf("%v: analysis interval %+v, design interval %+v", d, an.Interval, want)
		}
	}
}
