package sampling

// BenchmarkRunsToWidth measures the economic claim behind the
// variance-reduction designs: how many simulator executions each design
// needs before AnalyzeToWidth's interval narrows to a fixed target. The
// target per profile is what the plain construction achieves at 400
// samples, so "plain" converges near 400 full runs by construction and
// the design rows show the savings. Three custom metrics feed
// BENCH_10.json via benchreport:
//
//	full-runs/op   full-fidelity executions (the paper's unit of cost)
//	pilot-runs/op  quarter-scale proxy executions the design spent
//	run-cost/op    full-runs + pilot-runs scaled by relative simulation
//	               cost, i.e. total work in full-run equivalents
//
// Run with -benchtime=1x: one campaign per sub-benchmark is the
// measurement — everything is seed-deterministic, so more iterations
// only repeat the identical campaign.

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	benchScale      = 0.05
	benchPilotScale = benchScale / 2
	benchTargetN    = 400
)

var benchParams = core.Params{F: 0.5, C: 0.9}

// targetWidths memoizes the per-profile target so the three design rows
// of one profile share a single 400-sample plain calibration.
var targetWidths sync.Map

func targetWidthFor(b *testing.B, bench string, cfg sim.Config) float64 {
	b.Helper()
	if w, ok := targetWidths.Load(bench); ok {
		return w.(float64)
	}
	an, err := core.AnalyzeWith(core.FuncCollector(simRunFunc(bench, cfg, benchScale)),
		benchParams, core.Options{Samples: benchTargetN, BaseSeed: 1})
	if err != nil {
		b.Fatalf("%s: calibrating target width: %v", bench, err)
	}
	targetWidths.Store(bench, an.Interval.Width())
	return an.Interval.Width()
}

// runsToWidth runs one adaptive campaign under the design and returns
// (full runs, pilot runs, final sample count).
func runsToWidth(b *testing.B, bench string, cfg sim.Config, d Design, target float64) (int, int, int) {
	b.Helper()
	var fullRuns atomic.Int64
	counted := core.RunFunc(func(seed uint64) (float64, error) {
		fullRuns.Add(1)
		return simRunFunc(bench, cfg, benchScale)(seed)
	})
	w := core.WidthOptions{TargetWidth: target, MaxSamples: 4096, BaseSeed: 1}

	if d == Plain {
		an, err := core.AnalyzeToWidthWith(core.FuncCollector(counted), benchParams, w)
		if err != nil {
			b.Fatalf("%s/plain: %v", bench, err)
		}
		return int(fullRuns.Load()), 0, len(an.Samples)
	}

	pilot := PilotFromCollector(core.FuncCollector(simRunFunc(bench, cfg, benchPilotScale)), 0)
	c, err := New(Options{Design: d}, core.FuncCollector(counted), pilot)
	if err != nil {
		b.Fatal(err)
	}
	an, err := core.AnalyzeToWidthWith(c, benchParams, w)
	if err != nil {
		b.Fatalf("%s/%s: %v", bench, d, err)
	}
	st := c.Stats()
	return st.FullRuns, st.PilotRuns, len(an.Samples)
}

func BenchmarkRunsToWidth(b *testing.B) {
	cfg := sim.DefaultConfig()
	for _, bench := range workload.Names() {
		for _, d := range []Design{Plain, Stratified, RSS} {
			b.Run(bench+"/"+d.String(), func(b *testing.B) {
				target := targetWidthFor(b, bench, cfg)
				var full, pilots, samples int
				for i := 0; i < b.N; i++ {
					f, p, n := runsToWidth(b, bench, cfg, d, target)
					full += f
					pilots += p
					samples += n
				}
				n := float64(b.N)
				b.ReportMetric(float64(full)/n, "full-runs/op")
				b.ReportMetric(float64(pilots)/n, "pilot-runs/op")
				b.ReportMetric((float64(full)+float64(pilots)*benchPilotScale/benchScale)/n, "run-cost/op")
				b.ReportMetric(float64(samples)/n, "samples/op")
			})
		}
	}
}
