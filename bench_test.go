// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper (regenerating its rows at reduced scale — the same
// code paths cmd/experiments runs at paper scale), plus the ablation
// benchmarks called out in DESIGN.md. Custom metrics are attached via
// b.ReportMetric so `go test -bench` output carries the headline numbers
// (error probabilities, widths, sample counts) alongside timing.
package repro

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/population"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/stats"
)

// benchEngine is shared across benchmarks so populations are simulated
// once; sizes are reduced from the paper's but preserve every shape.
var (
	benchOnce sync.Once
	benchEng  *exp.Engine
	benchOpts = exp.Options{
		Runs: 48, HWRuns: 64, Trials: 80, Fig14Trials: 30,
		Samples: 22, Scale: 0.12, Resamples: 150, Seed: 1,
	}
)

func engine() *exp.Engine {
	benchOnce.Do(func() { benchEng = exp.NewEngine(benchOpts) })
	return benchEng
}

// runExperiment executes one experiment id per iteration and extracts a
// reportable headline number from its rows when given.
func runExperiment(b *testing.B, id string, headline func(*exp.Table) (string, float64)) {
	b.Helper()
	e := engine()
	// Warm the population cache outside the timed region.
	if _, err := e.Run(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := e.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	if headline != nil && last != nil {
		name, v := headline(last)
		b.ReportMetric(v, name)
	}
	last.Render(io.Discard)
}

// cell parses a table cell as a float (percent signs stripped).
func cell(t *exp.Table, row, col int) float64 {
	s := t.Rows[row][col]
	if n := len(s); n > 0 && s[n-1] == '%' {
		s = s[:n-1]
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// geomeanRow locates the "geomean" row of an error-probability figure.
func geomeanRow(t *exp.Table) int {
	for i, r := range t.Rows {
		if r[0] == "geomean" {
			return i
		}
	}
	return len(t.Rows) - 1
}

// BenchmarkFig01FerretHardwarePopulation regenerates Fig. 1: the bimodal
// hardware-like ferret runtime distribution.
func BenchmarkFig01FerretHardwarePopulation(b *testing.B) {
	runExperiment(b, "fig1", nil)
}

// BenchmarkFig02FerretSimPopulation regenerates Fig. 2: simulated ferret
// runtimes with variability injection.
func BenchmarkFig02FerretSimPopulation(b *testing.B) {
	runExperiment(b, "fig2", nil)
}

// BenchmarkTable1PropertyTemplates regenerates Table 1's template sweep.
func BenchmarkTable1PropertyTemplates(b *testing.B) {
	runExperiment(b, "table1", nil)
}

// BenchmarkTable2SystemParameters renders the Table 2 configuration.
func BenchmarkTable2SystemParameters(b *testing.B) {
	runExperiment(b, "table2", nil)
}

// BenchmarkFig04ThresholdSweep regenerates Fig. 4's per-threshold
// confidences for the L2-doubling speedup.
func BenchmarkFig04ThresholdSweep(b *testing.B) {
	runExperiment(b, "fig4", nil)
}

// BenchmarkFig05CICaseStudy regenerates Fig. 5's one-trial CI comparison.
func BenchmarkFig05CICaseStudy(b *testing.B) {
	runExperiment(b, "fig5", nil)
}

// BenchmarkFig06ErrorProbMedian regenerates Fig. 6 and reports SPA's
// geomean error probability at the median (paper: 0.065, bound 0.1).
func BenchmarkFig06ErrorProbMedian(b *testing.B) {
	runExperiment(b, "fig6", func(t *exp.Table) (string, float64) {
		return "spa-geomean-err", cell(t, geomeanRow(t), 1)
	})
}

// BenchmarkFig07WidthMedian regenerates Fig. 7's normalized widths.
func BenchmarkFig07WidthMedian(b *testing.B) {
	runExperiment(b, "fig7", func(t *exp.Table) (string, float64) {
		return "spa-runtime-width", cell(t, 0, 1)
	})
}

// BenchmarkFig08ErrorProbF90 regenerates Fig. 8 (F=0.9) and reports SPA's
// geomean error probability (paper: 0.081).
func BenchmarkFig08ErrorProbF90(b *testing.B) {
	runExperiment(b, "fig8", func(t *exp.Table) (string, float64) {
		return "spa-geomean-err", cell(t, geomeanRow(t), 1)
	})
}

// BenchmarkFig09WidthF90 regenerates Fig. 9's widths at F=0.9.
func BenchmarkFig09WidthF90(b *testing.B) {
	runExperiment(b, "fig9", nil)
}

// BenchmarkFig10ErrorProbBenchmarks regenerates Fig. 10 (L1D MPKI across
// benchmarks) and reports the bootstrap geomean error (paper: 0.135).
func BenchmarkFig10ErrorProbBenchmarks(b *testing.B) {
	runExperiment(b, "fig10", func(t *exp.Table) (string, float64) {
		return "bootstrap-geomean-err", cell(t, geomeanRow(t), 3)
	})
}

// BenchmarkFig11WidthBenchmarks regenerates Fig. 11.
func BenchmarkFig11WidthBenchmarks(b *testing.B) {
	runExperiment(b, "fig11", nil)
}

// BenchmarkFig12ErrorProbL2 regenerates Fig. 12 (L2 metric).
func BenchmarkFig12ErrorProbL2(b *testing.B) {
	runExperiment(b, "fig12", func(t *exp.Table) (string, float64) {
		return "spa-geomean-err", cell(t, geomeanRow(t), 1)
	})
}

// BenchmarkFig13WidthL2 regenerates Fig. 13.
func BenchmarkFig13WidthL2(b *testing.B) {
	runExperiment(b, "fig13", nil)
}

// BenchmarkFig14WidthVsConfidence regenerates Fig. 14's width-vs-confidence
// sweep and reports the SPA width at 99.9% confidence.
func BenchmarkFig14WidthVsConfidence(b *testing.B) {
	runExperiment(b, "fig14", func(t *exp.Table) (string, float64) {
		return "spa-width-99.9", cell(t, len(t.Rows)-1, 1)
	})
}

// BenchmarkFig15BootstrapFailures regenerates Fig. 15 (3-decimal rounding)
// and reports the bootstrap null rate on the max-load-latency metric.
func BenchmarkFig15BootstrapFailures(b *testing.B) {
	runExperiment(b, "fig15", func(t *exp.Table) (string, float64) {
		// max_load_latency row, Bootstrap_null column (percent).
		for i, r := range t.Rows {
			if r[0] == sim.MetricMaxLoadLat {
				return "bootstrap-null-pct", cell(t, i, 4)
			}
		}
		return "bootstrap-null-pct", 0
	})
}

// BenchmarkMinSamples regenerates the Sec. 4.3 minimum-sample table and
// reports the paper's headline count (22 at F=C=0.9).
func BenchmarkMinSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.MinSamplesTable()
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
	n, err := smc.MinSamples(0.9, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n), "min-samples-F.9-C.9")
}

// BenchmarkCoVTable regenerates the Sec. 6 dispersion table.
func BenchmarkCoVTable(b *testing.B) {
	runExperiment(b, "cov", nil)
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationSweepVsExact compares the paper's granularity-search CI
// construction against the exact order-statistic construction on the same
// samples: identical intervals (to one granularity step), very different
// costs.
func BenchmarkAblationSweepVsExact(b *testing.B) {
	r := randx.New(5)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Normal(100, 10)
	}
	p := core.Params{F: 0.9, C: 0.9, Granularity: 0.01}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ConfidenceInterval(xs, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ConfidenceIntervalSweep(xs, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationVariabilitySources quantifies each injected variability
// source (Sec. 2.2): with everything off the simulator is deterministic
// (CoV 0); each source contributes spread. The CoV of 16 ferret runtimes
// is attached per sub-benchmark.
func BenchmarkAblationVariabilitySources(b *testing.B) {
	cases := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"none", func(c *sim.Config) { c.JitterMax = -1; c.ASLRPages = 0; c.Thermal.InitSpread = 0 }},
		{"dram-jitter-only", func(c *sim.Config) { c.ASLRPages = 0; c.Thermal.InitSpread = 0 }},
		{"aslr-only", func(c *sim.Config) { c.JitterMax = -1; c.Thermal.InitSpread = 0 }},
		{"thermal-only", func(c *sim.Config) { c.JitterMax = -1; c.ASLRPages = 0 }},
		{"all", func(c *sim.Config) {}},
	}
	for _, cse := range cases {
		b.Run(cse.name, func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cse.mut(&cfg)
			var cov float64
			for i := 0; i < b.N; i++ {
				xs := make([]float64, 16)
				for s := range xs {
					res, err := sim.Run("ferret", cfg, 0.25, uint64(s))
					if err != nil {
						b.Fatal(err)
					}
					xs[s] = float64(res.Cycles)
				}
				cov = stats.CoefficientOfVariation(xs)
			}
			b.ReportMetric(cov*1e4, "cov-e4")
		})
	}
}

// BenchmarkAblationSPRTVsCP compares the sample counts of the two
// sequential SMC engines on the same clear-cut hypothesis: the
// Clopper–Pearson loop (Algorithm 1) needs no indifference assumption;
// Wald's SPRT trades that assumption for fewer samples on easy instances.
func BenchmarkAblationSPRTVsCP(b *testing.B) {
	const p, f, c = 0.98, 0.9, 0.9
	b.Run("clopper-pearson", func(b *testing.B) {
		var samples float64
		for i := 0; i < b.N; i++ {
			r := randx.New(uint64(i) + 1)
			res, err := smc.CheckSequential(smc.SamplerFunc(func() (bool, error) {
				return r.Bernoulli(p), nil
			}), f, c, 0)
			if err != nil {
				b.Fatal(err)
			}
			samples = float64(res.Samples)
		}
		b.ReportMetric(samples, "samples")
	})
	b.Run("sprt", func(b *testing.B) {
		sprt, err := smc.NewSPRT(f, c, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		var samples float64
		for i := 0; i < b.N; i++ {
			r := randx.New(uint64(i) + 1)
			res, err := sprt.Check(smc.SamplerFunc(func() (bool, error) {
				return r.Bernoulli(p), nil
			}), 0)
			if err != nil {
				b.Fatal(err)
			}
			samples = float64(res.Samples)
		}
		b.ReportMetric(samples, "samples")
	})
}

// BenchmarkAblationBatchParallel compares SPA's batched-parallel sample
// collection (Sec. 4.3) against a strictly sequential loop for the same
// 29-execution campaign.
func BenchmarkAblationBatchParallel(b *testing.B) {
	cfg := sim.DefaultConfig()
	run := func(seed uint64) (float64, error) {
		res, err := sim.Run("ferret", cfg, 0.08, seed)
		if err != nil {
			return 0, err
		}
		return res.Metrics[sim.MetricRuntime], nil
	}
	for _, batch := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Collect(run, 1, 29, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed per benchmark
// (supporting data for the substitution argument in DESIGN.md).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, bench := range []string{"ferret", "canneal", "swaptions"} {
		b.Run(bench, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(bench, sim.DefaultConfig(), 0.2, 1)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkPopulationGeneration measures parallel campaign throughput.
func BenchmarkPopulationGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := population.Generate("ferret", sim.DefaultConfig(), 0.08, 16, uint64(i)*100, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMSHRWindow quantifies the out-of-order memory window:
// runtime of a memory-bound benchmark as the per-core MSHR bound grows
// (1 = blocking in-order memory).
func BenchmarkAblationMSHRWindow(b *testing.B) {
	for _, mshrs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mshrs-%d", mshrs), func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.MSHRs = mshrs
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run("ferret", cfg, 0.2, 1)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationMSIvsMESI quantifies the Exclusive state's value: the
// same workload under MSI (every first write pays an upgrade transaction)
// versus MESI (silent E→M on private lines).
func BenchmarkAblationMSIvsMESI(b *testing.B) {
	for _, proto := range []string{"mesi", "msi"} {
		b.Run(proto, func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.CoherenceProtocol = proto
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run("swaptions", cfg, 0.2, 1)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationReplacementPolicy compares cache replacement policies.
// The workload matters: ferret's zipf-skewed shared reuse rewards LRU,
// whereas uniformly random access (canneal) is provably policy-independent
// — so the ablation runs ferret with a pressured 512 kB L2.
func BenchmarkAblationReplacementPolicy(b *testing.B) {
	for _, pol := range []string{"lru", "fifo", "random"} {
		b.Run(pol, func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.ReplacementPolicy = pol
			cfg.L2Size = 512 * 1024
			var mpki float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run("ferret", cfg, 0.4, 1)
				if err != nil {
					b.Fatal(err)
				}
				mpki = res.Metrics[sim.MetricL2MPKI]
			}
			b.ReportMetric(mpki, "l2-mpki")
		})
	}
}

// BenchmarkAblationPrefetcher measures the opt-in next-line prefetcher on
// ferret (default config runs without it). Expect it to HURT here: ferret's
// shared accesses are irregular, so next-line fills pollute the L2 and
// contend for DRAM channels — the classic irregular-workload prefetcher
// pathology (the sequential-stream case where it wins is pinned by
// TestPrefetcherCutsDemandL2Misses).
func BenchmarkAblationPrefetcher(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.PrefetchNextLine = on
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run("ferret", cfg, 0.2, 1)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}
