// Speedup analysis: the paper's Fig. 4/5 scenario — does doubling the L2
// from 512 kB to 1 MB speed up ferret, and by how much?
//
// Speedup samples are formed the way Sec. 5.2 prescribes: draw one
// execution from the base population and one from the improved population
// and divide their runtimes. SPA then sweeps property thresholds
// ("speedup ≥ v" for at least 90% of executions) to build the confidence
// interval, printing the same per-threshold confidences as Fig. 4.
//
// Run with: go run ./examples/speedup
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/randx"
	"repro/internal/sim"
)

func main() {
	const (
		runs  = 60
		scale = 0.3
	)
	base := sim.DefaultConfig()
	base.L2Size = 512 * 1024
	improved := sim.DefaultConfig()
	improved.L2Size = 1024 * 1024

	fmt.Println("simulating base system (512 kB L2)...")
	basePop, err := population.Generate("ferret", base, scale, runs, 100, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulating improved system (1 MB L2)...")
	imprPop, err := population.Generate("ferret", improved, scale, runs, 200, 0)
	if err != nil {
		log.Fatal(err)
	}

	baseRT, _ := basePop.Metric(sim.MetricRuntime)
	imprRT, _ := imprPop.Metric(sim.MetricRuntime)

	// The property "speedup ≥ v for at least 90% of executions" at 90%
	// confidence needs this many speedup samples:
	params := core.Params{F: 0.9, C: 0.9, Direction: core.AtLeast}
	n, err := core.CIMinSamples(params)
	if err != nil {
		log.Fatal(err)
	}
	speedups, err := population.Speedups(baseRT, imprRT, n, randx.New(7))
	if err != nil {
		log.Fatal(err)
	}

	iv, err := core.ConfidenceInterval(speedups, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith %d speedup samples: at least 90%% of executions see a speedup in [%.4f, %.4f] (C=0.9)\n",
		n, iv.Lo, iv.Hi)

	// The Fig. 4 view: per-threshold SMC test confidences around the CI.
	span := iv.Width()
	var thresholds []float64
	for i := -3; i <= 8; i++ {
		thresholds = append(thresholds, iv.Lo+float64(i)*span/5)
	}
	side := params
	side.C = 1 - (1-params.C)/2 // per-side level of the CI construction
	points, err := core.ThresholdSweep(speedups, thresholds, side)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthreshold  M/N    positive-confidence  verdict")
	for _, p := range points {
		fmt.Printf("%.4f     %2d/%d  %.4f               %s\n",
			p.Threshold, p.Satisfied, n, p.PositiveConf, p.Assertion)
	}
	fmt.Println("\nthresholds asserting 'positive' are guaranteed speedups;")
	fmt.Println("the non-converged band between the verdict flips is the confidence interval.")
}
