// Quickstart: the push-button SPA flow of the paper's Fig. 3.
//
// You provide (1) a way to run one seeded experiment that yields a metric,
// and (2) the proportion F and confidence C you care about. SPA computes
// how many executions it needs, runs them in parallel batches, and returns
// a confidence interval for the metric value at proportion F — with no
// Gaussian assumption anywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// The experiment: one simulated execution of the ferret benchmark on
	// the Table 2 system, returning its runtime. Any seeded, deterministic
	// experiment works here — a simulator, a testbed harness, anything.
	cfg := sim.DefaultConfig()
	runtime := func(seed uint64) (float64, error) {
		res, err := sim.Run("ferret", cfg, 0.3, seed)
		if err != nil {
			return 0, err
		}
		return res.Metrics[sim.MetricRuntime], nil
	}

	// The question: what runtime do 90% of executions stay under, with 90%
	// confidence? (Property template 1: "runtime ≤ v" at F = 0.9.)
	params := core.Params{F: 0.9, C: 0.9}

	analysis, err := core.Analyze(runtime, params, core.Options{
		Batch:    4, // at most 4 simulations in flight, like SPA's batch flag
		BaseSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executions run: %d (the minimum for F=%.2f, C=%.2f)\n",
		len(analysis.Samples), params.F, params.C)
	fmt.Printf("90%% of ferret executions finish within [%.6g s, %.6g s] (confidence 90%%)\n",
		analysis.Interval.Lo, analysis.Interval.Hi)

	// More executions narrow the interval — rerun with a bigger budget.
	wider, err := core.Analyze(runtime, params, core.Options{Samples: 120, Batch: 8, BaseSeed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d executions the interval narrows to [%.6g s, %.6g s]\n",
		len(wider.Samples), wider.Interval.Lo, wider.Interval.Hi)
}
