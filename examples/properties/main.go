// Temporal properties: checking the richer Table 1 properties with the
// sequential SMC engine (Algorithm 1) driving the simulator in a loop.
//
// The property here is the paper's computational-sprinting example
// (template 8): "if we enter the sprinting state, we stay in it until the
// thermal alert" — an STL Until over the execution's sampled trace. The
// SMC engine draws fresh simulated executions until it can assert, at 90%
// confidence, whether the property holds on at least 60% of executions.
//
// Run with: go run ./examples/properties
package main

import (
	"fmt"
	"log"

	"repro/internal/property"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/stl"
)

func main() {
	cfg := sim.DefaultConfig()

	// Template 8, built from the trace signals the simulator records.
	sprintUntilAlert := property.StayInStateUntil("sprint_enter", "sprint", "thermal_alert", stl.GE, 1.0)

	// An STL formula in the concrete syntax — a plausible-sounding
	// hypothesis: "every thermal alert is eventually followed by
	// re-entering the sprint state". SMC will *refute* it with high
	// confidence: after an alert the chip throttles and resumes nominal
	// frequency, but stays too warm to sprint again — exactly the kind of
	// wrong intuition rigorous checking catches.
	recovery, err := property.ParseSTL(
		"G[0,inf]((thermal_alert > 0.5) -> F[0,1000000](sprint_enter > 0.5))")
	if err != nil {
		log.Fatal(err)
	}

	for _, check := range []struct {
		prop property.Property
		f    float64
	}{
		{sprintUntilAlert, 0.6},
		{recovery, 0.8},
	} {
		seed := uint64(0)
		sampler := smc.SamplerFunc(func() (bool, error) {
			seed++
			res, err := sim.Run("ferret", cfg, 1.0, seed)
			if err != nil {
				return false, err
			}
			return check.prop.Check(property.Execution{Metrics: res.Metrics, Trace: res.Trace})
		})

		result, err := smc.CheckSequential(sampler, check.f, 0.9, 2000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("property: %s\n", check.prop.Name)
		fmt.Printf("  verdict: %s — holds on ≥%.0f%% of executions is %s at confidence %.4f\n",
			result.Assertion, 100*check.f, result.Assertion, result.Confidence)
		fmt.Printf("  evidence: %d of %d executions satisfied it; the engine stopped as soon as it was sure\n\n",
			result.Satisfied, result.Samples)
	}
}
