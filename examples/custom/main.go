// Custom workloads: model your own application and evaluate it rigorously.
//
// This example defines a custom two-stage pipeline (think: ingest +
// transform) with the workload builder API, runs an SPA campaign on the
// simulated Table 2 system, and answers two questions no mean-of-3-runs
// methodology can answer honestly:
//
//  1. What runtime do 90% of executions stay under (with 90% confidence)?
//  2. Is the run-to-run variation within 1%, for at least 80% of execution
//     pairs (a consistency hyperproperty)?
//
// Run with: go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/workload"
)

func main() {
	profile, err := workload.NewPipelineProfile("ingestor", workload.PipelineSpec{
		Items:         48,
		QueueCapacity: 3,
		Shared: workload.RegionSpec{
			SizeBytes: 2 << 20, // a 2 MB shared table
			ZipfSkew:  0.9,     // with a hot head
		},
		Private: workload.RegionSpec{
			SizeBytes:    512 << 10,
			HotFraction:  0.9, // tight per-item buffers
			HotBlocks:    48,
			AdvanceEvery: 120,
		},
		Stages: []workload.PipelineStageSpec{
			{Threads: 2, ComputeMean: 250, ComputeJitter: 60, MemOps: 60,
				WriteFraction: 0.3, SharedFrac: 0.5, Branches: 4},
			{Threads: 3, ComputeMean: 600, ComputeJitter: 150, MemOps: 90,
				WriteFraction: 0.2, SharedFrac: 0.6, Branches: 6},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultConfig()
	runtime := func(seed uint64) (float64, error) {
		prog := profile.Build(1.0, randx.New(0x0BEEF)) // fixed program, as in the paper
		res, err := sim.RunProgram(prog, cfg, randx.New(seed))
		if err != nil {
			return 0, err
		}
		return res.Metrics[sim.MetricRuntime], nil
	}

	// Question 1: the F = 0.9 runtime bound, push-button.
	analysis, err := core.Analyze(runtime, core.Params{F: 0.9, C: 0.9}, core.Options{Batch: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d executions of the custom pipeline\n", len(analysis.Samples))
	fmt.Printf("90%% of executions finish within [%.6g s, %.6g s] (confidence 90%%)\n",
		analysis.Interval.Lo, analysis.Interval.Hi)

	// Question 2: run-to-run consistency as a hyperproperty over the same
	// samples: do pairs of executions agree within 1%?
	med := analysis.Samples[len(analysis.Samples)/2]
	res, err := smc.CheckHyperFixed(analysis.Samples, 2, smc.MaxPairwiseGapWithin(0.01*med), 0.8, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistency: %d/%d execution pairs within 1%% — verdict %s (C_CP %.3f)\n",
		res.Satisfied, res.Samples, res.Assertion, res.Confidence)
	switch res.Assertion {
	case smc.Positive:
		fmt.Println("→ performance is reproducible enough to quote a single number")
	case smc.Negative:
		fmt.Println("→ quote distributions, not single numbers, for this workload")
	default:
		fmt.Println("→ not enough evidence either way; collect more executions")
	}
}
