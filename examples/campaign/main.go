// Campaign: characterizing a benchmark suite with SPA, plus a
// hyperproperty check (the paper's future-work example made concrete).
//
// For each benchmark we collect a parallel campaign and report the SPA
// confidence interval for the L1D MPKI at the median and at F = 0.9. Then
// a hyperproperty — "two executions' runtimes differ by less than 2%" —
// is tested over execution pairs with the fixed-sample SMC engine,
// quantifying run-to-run performance consistency per benchmark.
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	const (
		runs  = 64
		scale = 0.25
	)
	fmt.Printf("%-14s %-26s %-26s %s\n",
		"benchmark", "L1D MPKI median CI", "L1D MPKI F=0.9 CI", "runtimes within 2%?")
	for _, bench := range workload.Names() {
		pop, err := population.Generate(bench, cfg, scale, runs, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		mpki, err := pop.Metric(sim.MetricL1DMPKI)
		if err != nil {
			log.Fatal(err)
		}
		med, err := core.ConfidenceInterval(mpki, core.Params{F: 0.5, C: 0.9})
		if err != nil {
			log.Fatal(err)
		}
		hi, err := core.ConfidenceInterval(mpki, core.Params{F: 0.9, C: 0.9})
		if err != nil {
			log.Fatal(err)
		}

		// Hyperproperty: |runtime_i − runtime_j| ≤ 2% of the median, over
		// disjoint execution pairs, at F = 0.8, C = 0.9.
		rts, err := pop.Metric(sim.MetricRuntime)
		if err != nil {
			log.Fatal(err)
		}
		medRT := rts[len(rts)/2]
		res, err := smc.CheckHyperFixed(rts, 2, smc.MaxPairwiseGapWithin(0.02*medRT), 0.8, 0.9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s [%9.4f, %9.4f]     [%9.4f, %9.4f]     %s (%d/%d pairs, C_CP=%.3f)\n",
			bench, med.Lo, med.Hi, hi.Lo, hi.Hi,
			res.Assertion, res.Satisfied, res.Samples, res.Confidence)
	}
	fmt.Println("\n'positive' means ≥80% of execution pairs agree within 2% — a consistency guarantee,")
	fmt.Println("not an average: exactly the kind of statement SMC adds over mean-based evaluation.")
}
