// Method comparison: why the Gaussian assumption misleads — the paper's
// Sec. 2.4/6 story on one bimodal population.
//
// The hardware-like ferret population is bimodal (a colocated process
// slows ~20% of runs, as in Fig. 1). We build the 90% CI for the median
// runtime with all four techniques and check them against the population
// ground truth, then repeat on integer-rounded data to show the BCa
// bootstrap's duplicate-data failure (Sec. 6.4).
//
// Run with: go run ./examples/compare
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	fmt.Println("simulating a bimodal 'real machine' ferret population...")
	pop, err := population.Generate("ferret", sim.HardwareLikeConfig(), 0.3, 150, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := pop.GroundTruth(sim.MetricRuntime, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population median runtime (ground truth): %.6g s\n\n", truth)

	// One evaluation trial: 22 samples, as in the paper.
	xs, err := pop.Sample(sim.MetricRuntime, 22, randx.New(42))
	if err != nil {
		log.Fatal(err)
	}
	compare("22 raw samples", xs, truth)

	// The Fig. 15 twist: round to 3 decimals of milliseconds — duplicate
	// values appear and BCa starts failing.
	ms := make([]float64, len(xs))
	for i, v := range xs {
		ms[i] = v * 1e3
	}
	compare("same samples in ms, rounded to 3 decimals", stats.Round(ms, 3), truth*1e3)
}

func compare(label string, xs []float64, truth float64) {
	fmt.Printf("--- %s ---\n", label)
	fmt.Printf("%-22s %-26s %-8s %s\n", "method", "interval", "width", "covers truth?")
	show := func(name string, iv stats.Interval, err error) {
		switch {
		case errors.Is(err, ci.ErrDegenerate):
			fmt.Printf("%-22s failed: %v\n", name, err)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("%-22s [%.6g, %.6g]  %-8.3g %v\n", name, iv.Lo, iv.Hi, iv.Width(), iv.Contains(truth))
		}
	}
	spa, err := core.ConfidenceInterval(xs, core.Params{F: 0.5, C: 0.9})
	show("SPA", spa, err)
	b, err := ci.BootstrapBCa(xs, 0.5, 0.9, ci.BootstrapOptions{Seed: 7})
	show("Bootstrap (BCa)", b, err)
	r, err := ci.RankCI(xs, 0.5, 0.9)
	show("Rank", r, err)
	z, err := ci.ZScoreCI(xs, 0.9)
	show("Z-score", z, err)
	fmt.Println()
}
