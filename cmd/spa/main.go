// Command spa is the standalone SPA analysis tool: given experimental
// measurements (one value per line, or a population JSON produced by
// simrun), it builds SMC-based confidence intervals, runs hypothesis
// tests, reports minimum sample counts, and compares against the prior
// statistical techniques — the push-button workflow of the paper's Fig. 3.
//
// Usage:
//
//	spa ci         -input runtimes.txt -f 0.9 -c 0.9 [-direction atmost]
//	spa test       -input runtimes.txt -threshold 1.1 -f 0.8 -c 0.95
//	spa compare    -input runtimes.txt -f 0.5 -c 0.9
//	spa proportion -input runtimes.txt -threshold 1.1
//	spa hyper      -input runtimes.txt -gap-pct 0.02
//	spa stats      -gem5 'm5out-*/stats.txt' -find ipc
//	spa minsamples -f 0.9 -c 0.9
//
// Measurements can come from a plain text file (-input, one value per
// line), a simrun population (-json pop.json -metric runtime_s), real
// gem5 runs (-gem5 'm5out-*/stats.txt' -metric system.cpu0.ipc), or
// fresh simulations (-sim ferret -runs 100), optionally distributed
// across spaworker processes (-workers host:port,...) with byte-identical
// results.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gem5"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/popcache"
	"repro/internal/population"
	"repro/internal/sampling"
	"repro/internal/smc"
	"repro/internal/stats"
)

// telemetry is the process-wide observer, built from the global telemetry
// flags in run. Nil (the default) disables all instrumentation; every
// obs call below is nil-safe.
var telemetry *obs.Observer

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spa:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Global flags come before the subcommand (Parse stops at the first
	// non-flag): spa [-version] [-trace f] [-metrics f] [-pprof addr] <sub> ...
	gfs := flag.NewFlagSet("spa", flag.ContinueOnError)
	gfs.Usage = usage
	version := gfs.Bool("version", false, "print build information and exit")
	var of obs.Flags
	of.Register(gfs)
	if err := gfs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(os.Stdout, "spa")
		return nil
	}
	o, closeObs, err := of.Start("analyses", os.Stderr)
	if err != nil {
		return err
	}
	telemetry = o
	err = dispatch(gfs.Args())
	if cerr := closeObs(); err == nil {
		err = cerr
	}
	return err
}

func dispatch(args []string) error {
	if len(args) == 0 {
		usage()
		return errors.New("missing subcommand")
	}
	switch args[0] {
	case "ci":
		return runCI(args[1:])
	case "test":
		return runTest(args[1:])
	case "compare":
		return runCompare(args[1:])
	case "minsamples":
		return runMinSamples(args[1:])
	case "proportion":
		return runProportion(args[1:])
	case "hyper":
		return runHyper(args[1:])
	case "stats":
		return runStats(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: spa [global flags] <ci|test|compare|proportion|hyper|minsamples> [flags]
  ci          confidence interval for the metric at proportion F
  test        SMC hypothesis test of "metric ⋈ threshold"
  compare     CI from SPA and the prior techniques side by side
  proportion  Clopper-Pearson interval for a property's satisfaction probability
  hyper       hyperproperty check: executions pairwise within a gap
  stats       list metric names available in a gem5/simrun population
  minsamples  minimum executions required for (F, C)
global flags (before the subcommand): -version, -trace FILE, -metrics FILE,
  -pprof ADDR, -progress — see README "Observability"
data sources: -input FILE | -json POP | -gem5 GLOB | -sim BENCH [-workers host:port,...]
run "spa <subcommand> -h" for flags`)
}

// dataFlags are the shared input flags.
type dataFlags struct {
	input  string
	json   string
	gem5   string
	metric string
	// simulator-backed collection (-sim): measurements come from fresh
	// seeded executions, optionally distributed across spaworkers.
	sim      string
	variant  string
	runs     int
	scale    float64
	simSeed  uint64
	workers  string
	popcache string
	chunkMS  int
}

func (d *dataFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&d.input, "input", "", "text file with one measurement per line (- for stdin)")
	fs.StringVar(&d.json, "json", "", "population JSON produced by simrun")
	fs.StringVar(&d.gem5, "gem5", "", "glob of gem5 stats.txt files, one run per file")
	fs.StringVar(&d.metric, "metric", "runtime_s", "metric name when reading population JSON or gem5 stats or simulating")
	fs.StringVar(&d.sim, "sim", "", "simulate this benchmark to collect the measurements (see internal/workload)")
	fs.StringVar(&d.variant, "variant", "default", "system variant with -sim: default, hardware, l2half or l2double")
	fs.IntVar(&d.runs, "runs", 100, "executions to simulate with -sim")
	fs.Float64Var(&d.scale, "scale", 0.5, "workload scale with -sim")
	fs.Uint64Var(&d.simSeed, "simseed", 1, "base seed with -sim (run i uses simseed+i)")
	fs.StringVar(&d.workers, "workers", "", "comma-separated spaworker addresses to distribute -sim runs across (byte-identical to local)")
	fs.IntVar(&d.chunkMS, "chunk-target-ms", 250, "target wall time per dispatched chunk in milliseconds with -workers; chunks are sized from each worker's observed throughput (0 = fixed-size chunks)")
	fs.StringVar(&d.popcache, "popcache", "", "content-addressed population cache directory for -sim; hits are byte-identical to re-simulating")
}

func (d *dataFlags) load() ([]float64, error) {
	switch {
	case d.sim != "":
		e := manifest.Entry{Benchmark: d.sim, Variant: d.variant}
		cfg, err := e.Config()
		if err != nil {
			return nil, err
		}
		var cache *popcache.Cache
		if d.popcache != "" {
			cache = popcache.New(d.popcache, 0)
		}
		pop, _, err := cache.GetOrGenerate(
			popcache.Key{Benchmark: d.sim, Config: cfg, Scale: d.scale, BaseSeed: d.simSeed, Runs: d.runs},
			func() (*population.Population, error) {
				coord := &dist.Coordinator{Workers: dist.SplitAddrs(d.workers), Obs: telemetry,
					ChunkTarget: time.Duration(d.chunkMS) * time.Millisecond}
				return coord.GeneratePopulation(d.sim, cfg, d.scale, d.runs, d.simSeed,
					population.ObserverHooks(telemetry, d.sim))
			})
		if err != nil {
			return nil, err
		}
		return pop.Metric(d.metric)
	case d.gem5 != "":
		pop, err := gem5.Population(d.gem5)
		if err != nil {
			return nil, err
		}
		xs, err := pop.Metric(d.metric)
		if err != nil {
			return nil, fmt.Errorf("%w (try a substring with 'spa stats -gem5 ...' to discover names)", err)
		}
		return xs, nil
	case d.json != "":
		f, err := os.Open(d.json)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pop, err := population.Load(f)
		if err != nil {
			return nil, err
		}
		return pop.Metric(d.metric)
	case d.input == "-":
		return readValues(os.Stdin)
	case d.input != "":
		f, err := os.Open(d.input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return readValues(f)
	default:
		return nil, errors.New("provide -input, -json, -gem5 or -sim")
	}
}

func readValues(f *os.File) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("no values read")
	}
	return out, nil
}

func parseDirection(s string) (core.Direction, error) {
	switch s {
	case "atmost", "le", "<=":
		return core.AtMost, nil
	case "atleast", "ge", ">=":
		return core.AtLeast, nil
	default:
		return 0, fmt.Errorf("unknown direction %q (want atmost or atleast)", s)
	}
}

func runCI(args []string) error {
	fs := flag.NewFlagSet("ci", flag.ContinueOnError)
	var d dataFlags
	d.register(fs)
	f := fs.Float64("f", 0.9, "proportion F in (0,1)")
	c := fs.Float64("c", 0.9, "confidence C in (0,1)")
	dir := fs.String("direction", "atmost", "property direction: atmost (metric ≤ v) or atleast (metric ≥ v)")
	sweep := fs.Bool("sweep", false, "use the paper's granularity search instead of the exact construction")
	gran := fs.Float64("granularity", 0, "sweep step (0 = auto)")
	samplingDesign := fs.String("sampling", "", "variance-reduction design with -sim: plain, stratified or rss (collects through a pilot-guided design collector)")
	targetWidth := fs.Float64("target-width", 0, "adaptive mode with -sim: add executions round by round until the CI is at most this wide (-runs bounds the budget)")
	pilotScale := fs.Float64("pilot-scale", 0, "pilot workload scale for -sampling (0 = half of -scale)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	design, err := sampling.ParseDesign(*samplingDesign)
	if err != nil {
		return err
	}
	direction, err := parseDirection(*dir)
	if err != nil {
		return err
	}
	p := core.Params{F: *f, C: *c, Direction: direction, Granularity: *gran}
	if design != sampling.Plain || *targetWidth > 0 {
		return runCollectedCI(&d, p, design, *targetWidth, *pilotScale)
	}
	xs, err := d.load()
	if err != nil {
		return err
	}
	span := telemetry.T().StartSpan("spa.ci", obs.Int("samples", len(xs)),
		obs.F64("f", *f), obs.F64("c", *c), obs.Bool("sweep", *sweep))
	var iv interface{ Width() float64 }
	if *sweep {
		got, err := core.ConfidenceIntervalSweep(xs, p)
		telemetry.CIBuilt("SPA", got.Width(), err)
		if err != nil {
			span.End(obs.Str("error", err.Error()))
			return err
		}
		iv = got
		fmt.Printf("SPA CI (sweep): [%.6g, %.6g]\n", got.Lo, got.Hi)
	} else {
		got, err := core.ConfidenceInterval(xs, p)
		telemetry.CIBuilt("SPA", got.Width(), err)
		if err != nil {
			span.End(obs.Str("error", err.Error()))
			return err
		}
		iv = got
		fmt.Printf("SPA CI: [%.6g, %.6g]\n", got.Lo, got.Hi)
	}
	span.End(obs.F64("width", iv.Width()))
	fmt.Printf("width: %.6g\n", iv.Width())
	fmt.Printf("samples: %d, F=%g, C=%g, property: metric %s v\n", len(xs), *f, *c, direction)
	return nil
}

// runCollectedCI is the collector-backed arm of "spa ci": instead of
// loading a fixed measurement set it simulates through the coordinator
// (workers when configured, in-process otherwise), optionally under a
// variance-reduction design and optionally adaptively to a target width.
func runCollectedCI(d *dataFlags, p core.Params, design sampling.Design, targetWidth, pilotScale float64) error {
	if d.sim == "" {
		return errors.New("-sampling and -target-width need -sim (they collect, not load)")
	}
	e := manifest.Entry{Benchmark: d.sim, Variant: d.variant}
	cfg, err := e.Config()
	if err != nil {
		return err
	}
	coord := &dist.Coordinator{Workers: dist.SplitAddrs(d.workers), Obs: telemetry,
		ChunkTarget: time.Duration(d.chunkMS) * time.Millisecond}
	var col core.Collector = coord.Collector(dist.Job{Benchmark: d.sim, Config: cfg, Scale: d.scale}, d.metric)
	var cache *popcache.Cache
	if d.popcache != "" {
		cache = popcache.New(d.popcache, 0)
	}
	var dcol *sampling.Collector
	if design != sampling.Plain {
		ps := pilotScale
		if ps == 0 {
			ps = d.scale / 2
		}
		pilot := sampling.PilotFromCollector(
			coord.Collector(dist.Job{Benchmark: d.sim, Config: cfg, Scale: ps}, d.metric), 0)
		dcol, err = sampling.New(sampling.Options{
			Design: design, Metric: d.metric, Cache: cache,
			Recipe: popcache.Key{Benchmark: d.sim, Config: cfg, Scale: d.scale,
				PilotScale: ps, ProxyMetric: d.metric},
		}, col, pilot)
		if err != nil {
			return err
		}
		col = dcol
	}
	span := telemetry.T().StartSpan("spa.ci_collect", obs.Str("benchmark", d.sim),
		obs.Str("sampling", design.String()), obs.F64("target_width", targetWidth))
	var an *core.Analysis
	budgetHit := false
	if targetWidth > 0 {
		an, err = core.AnalyzeToWidthWith(col, p, core.WidthOptions{
			TargetWidth: targetWidth, MaxSamples: d.runs, BaseSeed: d.simSeed})
		if errors.Is(err, core.ErrWidthBudget) {
			budgetHit, err = true, nil
		}
	} else {
		an, err = core.AnalyzeWith(col, p, core.Options{Samples: d.runs, BaseSeed: d.simSeed})
	}
	telemetry.CIBuilt("SPA", 0, err)
	if err != nil {
		span.End(obs.Str("error", err.Error()))
		return err
	}
	telemetry.CIBuilt("SPA", an.Interval.Width(), nil)
	span.End(obs.F64("width", an.Interval.Width()), obs.Int("samples", len(an.Samples)))
	label := "SPA CI"
	if design != sampling.Plain {
		label = fmt.Sprintf("SPA CI (%s)", design)
	}
	fmt.Printf("%s: [%.6g, %.6g]\n", label, an.Interval.Lo, an.Interval.Hi)
	fmt.Printf("width: %.6g\n", an.Interval.Width())
	fmt.Printf("samples: %d, F=%g, C=%g, property: metric %s v\n", len(an.Samples), p.F, p.C, p.Direction)
	if dcol != nil {
		st := dcol.Stats()
		fmt.Printf("design: %s, pilot runs: %d (scale-reduced), fidelity: %.3g\n",
			design, st.PilotRuns, st.Fidelity)
	}
	if budgetHit {
		fmt.Printf("note: -runs budget reached before the target width; interval is the widest effort\n")
	}
	return nil
}

func runTest(args []string) error {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var d dataFlags
	d.register(fs)
	f := fs.Float64("f", 0.9, "proportion F in (0,1)")
	c := fs.Float64("c", 0.9, "confidence C in (0,1)")
	thr := fs.Float64("threshold", 0, "property threshold v")
	dir := fs.String("direction", "atmost", "property direction: atmost or atleast")
	if err := fs.Parse(args); err != nil {
		return err
	}
	xs, err := d.load()
	if err != nil {
		return err
	}
	direction, err := parseDirection(*dir)
	if err != nil {
		return err
	}
	span := telemetry.T().StartSpan("spa.smc_test", obs.Int("samples", len(xs)),
		obs.F64("f", *f), obs.F64("c", *c), obs.F64("threshold", *thr))
	telemetry.M().Counter(obs.MetricSMCTests).Inc()
	res, err := core.HypothesisTest(xs, *thr, core.Params{F: *f, C: *c, Direction: direction})
	if err != nil {
		span.End(obs.Str("error", err.Error()))
		return err
	}
	span.End(obs.Str("assertion", res.Assertion.String()),
		obs.F64("confidence", res.Confidence), obs.Int("satisfied", res.Satisfied))
	fmt.Printf("property: metric %s %g for ≥%g of executions\n", direction, *thr, *f)
	fmt.Printf("satisfied: %d/%d\n", res.Satisfied, res.Samples)
	fmt.Printf("assertion: %s (C_CP = %.4f, requested C = %g)\n", res.Assertion, res.Confidence, *c)
	if !res.Converged() {
		min, err := smc.MinSamples(*f, *c)
		if err == nil {
			fmt.Printf("not converged: collect more executions (minimum for convergence is %d)\n", min)
		}
	}
	return nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var d dataFlags
	d.register(fs)
	f := fs.Float64("f", 0.5, "proportion F in (0,1)")
	c := fs.Float64("c", 0.9, "confidence C in (0,1)")
	resamples := fs.Int("resamples", 2000, "bootstrap resamples")
	seed := fs.Uint64("seed", 1, "bootstrap seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	xs, err := d.load()
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %-12s %-12s %s\n", "method", "lo", "hi", "width")
	show := func(name string, lo, hi float64, err error) {
		if errors.Is(err, ci.ErrDegenerate) {
			fmt.Printf("%-22s failed to produce a CI (%v)\n", name, err)
			return
		}
		if err != nil {
			fmt.Printf("%-22s error: %v\n", name, err)
			return
		}
		fmt.Printf("%-22s %-12.6g %-12.6g %.6g\n", name, lo, hi, hi-lo)
	}
	spaIV, err := core.ConfidenceInterval(xs, core.Params{F: *f, C: *c})
	show("SPA", spaIV.Lo, spaIV.Hi, err)
	bIV, err := ci.BootstrapBCa(xs, *f, *c, ci.BootstrapOptions{Resamples: *resamples, Seed: *seed})
	show("Bootstrap (BCa)", bIV.Lo, bIV.Hi, err)
	rIV, err := ci.RankCI(xs, *f, *c)
	show("Rank (normal approx)", rIV.Lo, rIV.Hi, err)
	reIV, err := ci.RankCIExact(xs, *f, *c)
	show("Rank (exact)", reIV.Lo, reIV.Hi, err)
	if *f == 0.5 {
		zIV, err := ci.ZScoreCI(xs, *c)
		show("Z-score", zIV.Lo, zIV.Hi, err)
	} else {
		fmt.Printf("%-22s requires F=0.5 (Gaussian mean/median)\n", "Z-score")
	}
	return nil
}

func runProportion(args []string) error {
	fs := flag.NewFlagSet("proportion", flag.ContinueOnError)
	var d dataFlags
	d.register(fs)
	c := fs.Float64("c", 0.9, "confidence C in (0,1)")
	thr := fs.Float64("threshold", 0, "property threshold v")
	dir := fs.String("direction", "atmost", "property direction: atmost or atleast")
	if err := fs.Parse(args); err != nil {
		return err
	}
	xs, err := d.load()
	if err != nil {
		return err
	}
	direction, err := parseDirection(*dir)
	if err != nil {
		return err
	}
	m := 0
	for _, v := range xs {
		sat := v <= *thr
		if direction == core.AtLeast {
			sat = v >= *thr
		}
		if sat {
			m++
		}
	}
	iv, err := smc.ProportionInterval(m, len(xs), *c)
	if err != nil {
		return err
	}
	fmt.Printf("property: metric %s %g"+"\n", direction, *thr)
	fmt.Printf("satisfied: %d/%d (%.3f)"+"\n", m, len(xs), float64(m)/float64(len(xs)))
	fmt.Printf("satisfaction probability CI at C=%g: [%.4f, %.4f]"+"\n", *c, iv.Lo, iv.Hi)
	return nil
}

func runHyper(args []string) error {
	fs := flag.NewFlagSet("hyper", flag.ContinueOnError)
	var d dataFlags
	d.register(fs)
	f := fs.Float64("f", 0.8, "proportion F in (0,1)")
	c := fs.Float64("c", 0.9, "confidence C in (0,1)")
	gap := fs.Float64("gap", 0, "maximum absolute gap between tuple members")
	gapPct := fs.Float64("gap-pct", 0, "gap as a fraction of the sample median (overrides -gap)")
	arity := fs.Int("arity", 2, "tuple size k (disjoint consecutive tuples)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	xs, err := d.load()
	if err != nil {
		return err
	}
	eps := *gap
	if *gapPct > 0 {
		med, err := stats.Quantile(xs, 0.5)
		if err != nil {
			return err
		}
		eps = *gapPct * med
	}
	if eps <= 0 {
		return errors.New("provide a positive -gap or -gap-pct")
	}
	res, err := smc.CheckHyperFixed(xs, *arity, smc.MaxPairwiseGapWithin(eps), *f, *c)
	if err != nil {
		return err
	}
	fmt.Printf("hyperproperty: all %d-tuples of executions within %.6g of each other\n", *arity, eps)
	fmt.Printf("satisfied tuples: %d/%d\n", res.Satisfied, res.Samples)
	fmt.Printf("assertion for ≥%g of tuples: %s (C_CP = %.4f)\n", *f, res.Assertion, res.Confidence)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	g5 := fs.String("gem5", "", "glob of gem5 stats.txt files")
	jsonPath := fs.String("json", "", "population JSON produced by simrun")
	find := fs.String("find", "", "only list names containing this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var names []string
	switch {
	case *g5 != "":
		pop, err := gem5.Population(*g5)
		if err != nil {
			return err
		}
		for n := range pop.Metrics {
			names = append(names, n)
		}
	case *jsonPath != "":
		f, err := os.Open(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pop, err := population.Load(f)
		if err != nil {
			return err
		}
		for n := range pop.Metrics {
			names = append(names, n)
		}
	default:
		return errors.New("provide -gem5 or -json")
	}
	sort.Strings(names)
	for _, n := range names {
		if *find == "" || strings.Contains(n, *find) {
			fmt.Println(n)
		}
	}
	return nil
}

func runMinSamples(args []string) error {
	fs := flag.NewFlagSet("minsamples", flag.ContinueOnError)
	f := fs.Float64("f", 0.9, "proportion F in (0,1)")
	c := fs.Float64("c", 0.9, "confidence C in (0,1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	np, err := smc.MinSamplesPositive(*f, *c)
	if err != nil {
		return err
	}
	nn, err := smc.MinSamplesNegative(*f, *c)
	if err != nil {
		return err
	}
	nh, err := smc.MinSamples(*f, *c)
	if err != nil {
		return err
	}
	nci, err := core.CIMinSamples(core.Params{F: *f, C: *c})
	if err != nil {
		return err
	}
	fmt.Printf("F=%g C=%g\n", *f, *c)
	fmt.Printf("fastest positive convergence (eq. 6): %d samples\n", np)
	fmt.Printf("fastest negative convergence (eq. 7): %d samples\n", nn)
	fmt.Printf("hypothesis-test minimum (eq. 8):      %d samples\n", nh)
	fmt.Printf("SPA confidence-interval minimum:      %d samples\n", nci)
	return nil
}
