package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/population"
)

func writeValues(t *testing.T, lines string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "values.txt")
	if err := os.WriteFile(path, []byte(lines), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func manyValues(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("# comment line\n\n")
	for i := 0; i < 40; i++ {
		sb.WriteString(strings.TrimSpace(strings.Repeat(" ", i%2)+"1.") + string(rune('0'+i%10)) + "\n")
	}
	return writeValues(t, sb.String())
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help should succeed: %v", err)
	}
}

func TestMinSamplesSubcommand(t *testing.T) {
	if err := run([]string{"minsamples", "-f", "0.9", "-c", "0.9"}); err != nil {
		t.Errorf("minsamples failed: %v", err)
	}
	if err := run([]string{"minsamples", "-f", "1.5"}); err == nil {
		t.Error("bad F should error")
	}
}

func TestCISubcommand(t *testing.T) {
	path := manyValues(t)
	if err := run([]string{"ci", "-input", path, "-f", "0.5", "-c", "0.9"}); err != nil {
		t.Errorf("ci failed: %v", err)
	}
	if err := run([]string{"ci", "-input", path, "-f", "0.5", "-c", "0.9", "-sweep"}); err != nil {
		t.Errorf("ci -sweep failed: %v", err)
	}
	if err := run([]string{"ci", "-input", path, "-direction", "atleast", "-f", "0.6"}); err != nil {
		t.Errorf("ci atleast failed: %v", err)
	}
	if err := run([]string{"ci", "-input", path, "-direction", "sideways"}); err == nil {
		t.Error("bad direction should error")
	}
	if err := run([]string{"ci"}); err == nil {
		t.Error("missing input should error")
	}
	if err := run([]string{"ci", "-input", filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Error("missing file should error")
	}
}

func TestCIInsufficientSamplesSurfaces(t *testing.T) {
	path := writeValues(t, "1\n2\n3\n")
	if err := run([]string{"ci", "-input", path, "-f", "0.9", "-c", "0.9"}); err == nil {
		t.Error("3 samples at F=C=0.9 should report insufficient samples")
	}
}

func TestTestSubcommand(t *testing.T) {
	path := manyValues(t)
	if err := run([]string{"test", "-input", path, "-threshold", "1.5", "-f", "0.5", "-c", "0.9"}); err != nil {
		t.Errorf("test failed: %v", err)
	}
	if err := run([]string{"test", "-input", path, "-threshold", "1.5", "-direction", "atleast"}); err != nil {
		t.Errorf("test atleast failed: %v", err)
	}
}

func TestCompareSubcommand(t *testing.T) {
	path := manyValues(t)
	if err := run([]string{"compare", "-input", path, "-f", "0.5"}); err != nil {
		t.Errorf("compare failed: %v", err)
	}
	// F≠0.5 skips the Z-score row but still succeeds.
	if err := run([]string{"compare", "-input", path, "-f", "0.8"}); err != nil {
		t.Errorf("compare at F=0.8 failed: %v", err)
	}
}

func TestJSONInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pop.json")
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = 5 + float64(i)*0.01
	}
	pop := population.FromValues("bench", "m", vals)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"ci", "-json", path, "-metric", "m", "-f", "0.5"}); err != nil {
		t.Errorf("json ci failed: %v", err)
	}
	if err := run([]string{"ci", "-json", path, "-metric", "missing"}); err == nil {
		t.Error("missing metric should error")
	}
	if err := run([]string{"ci", "-json", filepath.Join(dir, "nope.json")}); err == nil {
		t.Error("missing json should error")
	}
}

func TestBadInputValues(t *testing.T) {
	path := writeValues(t, "1.0\nnot-a-number\n")
	if err := run([]string{"ci", "-input", path}); err == nil {
		t.Error("garbage line should error")
	}
	empty := writeValues(t, "# only a comment\n")
	if err := run([]string{"ci", "-input", empty}); err == nil {
		t.Error("empty input should error")
	}
}

func TestProportionSubcommand(t *testing.T) {
	path := manyValues(t)
	if err := run([]string{"proportion", "-input", path, "-threshold", "1.5", "-c", "0.9"}); err != nil {
		t.Errorf("proportion failed: %v", err)
	}
	if err := run([]string{"proportion", "-input", path, "-threshold", "1.5", "-direction", "atleast"}); err != nil {
		t.Errorf("proportion atleast failed: %v", err)
	}
	if err := run([]string{"proportion", "-input", path, "-c", "2"}); err == nil {
		t.Error("bad confidence should error")
	}
}

func TestHyperSubcommand(t *testing.T) {
	path := manyValues(t)
	if err := run([]string{"hyper", "-input", path, "-gap", "2.0"}); err != nil {
		t.Errorf("hyper failed: %v", err)
	}
	if err := run([]string{"hyper", "-input", path, "-gap-pct", "0.5", "-arity", "3"}); err != nil {
		t.Errorf("hyper gap-pct failed: %v", err)
	}
	if err := run([]string{"hyper", "-input", path}); err == nil {
		t.Error("missing gap should error")
	}
	if err := run([]string{"hyper", "-input", path, "-gap", "1", "-arity", "1"}); err == nil {
		t.Error("arity 1 should error")
	}
}

func TestGem5Input(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 30; i++ {
		content := "---------- Begin Simulation Statistics ----------\n" +
			"system.cpu0.ipc  0." + string(rune('5'+i%4)) + "0  # ipc\n" +
			"---------- End Simulation Statistics   ----------\n"
		if err := os.WriteFile(filepath.Join(dir, "r"+string(rune('a'+i%26))+string(rune('0'+i/26))+".txt"),
			[]byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	glob := filepath.Join(dir, "r*.txt")
	if err := run([]string{"ci", "-gem5", glob, "-metric", "system.cpu0.ipc", "-f", "0.5"}); err != nil {
		t.Errorf("gem5 ci failed: %v", err)
	}
	if err := run([]string{"ci", "-gem5", glob, "-metric", "nope"}); err == nil {
		t.Error("unknown gem5 metric should error")
	}
	if err := run([]string{"ci", "-gem5", filepath.Join(dir, "none*.txt")}); err == nil {
		t.Error("empty glob should error")
	}
}

func TestStatsSubcommand(t *testing.T) {
	dir := t.TempDir()
	content := "---------- Begin Simulation Statistics ----------\n" +
		"system.cpu0.ipc 0.5\nsystem.l2.misses 100\n" +
		"---------- End Simulation Statistics   ----------\n"
	path := filepath.Join(dir, "stats.txt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats", "-gem5", path}); err != nil {
		t.Errorf("stats -gem5 failed: %v", err)
	}
	if err := run([]string{"stats", "-gem5", path, "-find", "l2"}); err != nil {
		t.Errorf("stats -find failed: %v", err)
	}
	// JSON population path.
	vals := []float64{1, 2, 3}
	pop := population.FromValues("b", "m", vals)
	jp := filepath.Join(dir, "pop.json")
	f, err := os.Create(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"stats", "-json", jp}); err != nil {
		t.Errorf("stats -json failed: %v", err)
	}
	if err := run([]string{"stats"}); err == nil {
		t.Error("stats without input should error")
	}
}

func TestVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Errorf("-version failed: %v", err)
	}
}

func TestGlobalTelemetryFlags(t *testing.T) {
	path := manyValues(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")
	err := run([]string{
		"-trace", tracePath, "-metrics", metricsPath,
		"ci", "-input", path, "-f", "0.5", "-c", "0.9",
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"name":"spa.ci"`) {
		t.Errorf("trace missing spa.ci span:\n%s", trace)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "spa_ci_built_total 1") {
		t.Errorf("metrics dump missing CI counter:\n%s", metrics)
	}
	// An SMC test increments the test counter.
	metricsPath2 := filepath.Join(dir, "metrics2.prom")
	err = run([]string{
		"-metrics", metricsPath2,
		"test", "-input", path, "-threshold", "1.5", "-f", "0.5", "-c", "0.9",
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics2, err := os.ReadFile(metricsPath2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics2), "spa_smc_tests_total 1") {
		t.Errorf("metrics dump missing SMC test counter:\n%s", metrics2)
	}
}
