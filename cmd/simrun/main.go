// Command simrun runs campaigns on the simulator substrate: N seeded
// executions of a benchmark on a system variant, collecting every scalar
// metric into a population JSON that the spa tool can analyze — the
// "simulator wrapper" half of the paper's Fig. 3.
//
// Usage:
//
//	simrun -bench ferret -runs 500 -out ferret.json
//	simrun -bench canneal -variant hardware -runs 100 -scale 0.5
//	simrun -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simrun", flag.ContinueOnError)
	bench := fs.String("bench", "ferret", "benchmark profile to run")
	variant := fs.String("variant", "default", "system variant: default, hardware, l2half, l2double")
	runs := fs.Int("runs", 100, "number of executions")
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 ≈ simsmall-like)")
	seed := fs.Uint64("seed", 1, "base seed; execution i uses seed+i")
	parallel := fs.Int("parallel", 0, "max concurrent executions (0 = GOMAXPROCS)")
	out := fs.String("out", "", "write population JSON here (default: stdout summary only)")
	list := fs.Bool("list", false, "list benchmark profiles and exit")
	l2kb := fs.Int("l2kb", 0, "override L2 size in KB (0 = variant default)")
	mshrs := fs.Int("mshrs", 0, "override per-core outstanding-miss window (0 = default)")
	protocol := fs.String("protocol", "", "override coherence protocol: mesi or msi")
	replacement := fs.String("replacement", "", "override replacement policy: lru, fifo or random")
	bp := fs.String("bp", "", "override branch predictor: bimodal or gshare")
	version := fs.Bool("version", false, "print build information and exit")
	var of obs.Flags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(w, "simrun")
		return nil
	}

	if *list {
		for _, n := range workload.Names() {
			fmt.Fprintln(w, n)
		}
		return nil
	}

	var cfg sim.Config
	switch *variant {
	case "default":
		cfg = sim.DefaultConfig()
	case "hardware":
		cfg = sim.HardwareLikeConfig()
	case "l2half":
		cfg = sim.DefaultConfig()
		cfg.L2Size = 512 * 1024
	case "l2double":
		cfg = sim.DefaultConfig()
		cfg.L2Size = 1024 * 1024
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	if *l2kb > 0 {
		cfg.L2Size = *l2kb * 1024
	}
	if *mshrs > 0 {
		cfg.MSHRs = *mshrs
	}
	if *protocol != "" {
		cfg.CoherenceProtocol = *protocol
	}
	if *replacement != "" {
		cfg.ReplacementPolicy = *replacement
	}
	if *bp != "" {
		cfg.BPKind = *bp
	}

	o, closeObs, err := of.Start("runs", os.Stderr)
	if err != nil {
		return err
	}
	o.P().AddTotal(*runs)
	pop, err := population.GenerateHooked(*bench, cfg, *scale, *runs, *seed, *parallel,
		population.ObserverHooks(o, *bench))
	if err != nil {
		closeObs()
		return err
	}
	if err := closeObs(); err != nil {
		return err
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pop.Save(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d runs of %s (%s variant) to %s\n", *runs, *bench, *variant, *out)
	}

	// Summary of the campaign.
	names := make([]string, 0, len(pop.Metrics))
	for n := range pop.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-18s %-14s %-14s %-14s %-10s\n", "metric", "median", "F=0.9", "mean", "cov")
	fmt.Fprintln(w, strings.Repeat("-", 74))
	for _, n := range names {
		vs, _ := pop.Metric(n)
		med, _ := stats.Quantile(vs, 0.5)
		q90, _ := stats.Quantile(vs, 0.9)
		fmt.Fprintf(w, "%-18s %-14.6g %-14.6g %-14.6g %-10.4f\n",
			n, med, q90, stats.Mean(vs), stats.CoefficientOfVariation(vs))
	}
	return nil
}
