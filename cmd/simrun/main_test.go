package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/population"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, b := range []string{"ferret", "canneal", "swaptions"} {
		if !strings.Contains(out, b) {
			t.Errorf("list output missing %q", b)
		}
	}
}

func TestCampaignSummaryAndJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "pop.json")
	var buf bytes.Buffer
	err := run([]string{"-bench", "swaptions", "-runs", "8", "-scale", "0.05", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "runtime_s") {
		t.Error("summary missing runtime metric")
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pop, err := population.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Runs != 8 || pop.Benchmark != "swaptions" {
		t.Errorf("population header %+v", pop)
	}
	vs, err := pop.Metric("l1d_mpki")
	if err != nil || len(vs) != 8 {
		t.Errorf("metric vector wrong: %v, %v", vs, err)
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "simrun ") {
		t.Errorf("version output wrong:\n%s", buf.String())
	}
}

func TestTelemetryFlags(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "m.json")
	var buf bytes.Buffer
	err := run([]string{
		"-bench", "swaptions", "-runs", "3", "-scale", "0.05",
		"-trace", tracePath, "-metrics", metricsPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(trace), `"name":"sim.run"`); got != 3 {
		t.Errorf("trace has %d sim.run spans, want 3:\n%s", got, trace)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), `"spa_runs_completed_total": 3`) {
		t.Errorf("JSON metrics dump missing counter:\n%s", metrics)
	}
}

func TestVariants(t *testing.T) {
	for _, v := range []string{"default", "hardware", "l2half", "l2double"} {
		var buf bytes.Buffer
		if err := run([]string{"-bench", "swaptions", "-runs", "2", "-scale", "0.05", "-variant", v}, &buf); err != nil {
			t.Errorf("variant %s failed: %v", v, err)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-variant", "warp-drive"}, &buf); err == nil {
		t.Error("unknown variant should error")
	}
}

func TestBadBenchAndFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench", "nope", "-runs", "2", "-scale", "0.05"}, &buf); err == nil {
		t.Error("unknown benchmark should error")
	}
	if err := run([]string{"-runs", "0"}, &buf); err == nil {
		t.Error("zero runs should error")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
	if err := run([]string{"-bench", "swaptions", "-runs", "2", "-scale", "0.05",
		"-out", filepath.Join(t.TempDir(), "nodir", "x.json")}, &buf); err == nil {
		t.Error("unwritable output path should error")
	}
}

func TestConfigOverrides(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-bench", "swaptions", "-runs", "2", "-scale", "0.05",
		"-l2kb", "512", "-mshrs", "2", "-protocol", "msi", "-replacement", "fifo", "-bp", "gshare"}, &buf)
	if err != nil {
		t.Fatalf("overrides failed: %v", err)
	}
	if err := run([]string{"-bench", "swaptions", "-runs", "2", "-scale", "0.05", "-protocol", "moesi"}, &buf); err == nil {
		t.Error("bad protocol override should surface the config error")
	}
}
