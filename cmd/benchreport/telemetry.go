package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/manifest"
)

// convergenceGroup is one adaptive analysis's trajectory pulled out of a
// campaign telemetry journal.
type convergenceGroup struct {
	entry, metric string
	target        float64
	rounds        []manifest.ConvergenceRound
}

// readTelemetry parses a <name>-telemetry.jsonl convergence journal
// (written by the campaign runner) and groups its rounds per analysis,
// preserving journal order.
func readTelemetry(r io.Reader) ([]convergenceGroup, error) {
	var groups []convergenceGroup
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec manifest.ConvergenceRound
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("journal line %d: %v", line, err)
		}
		key := rec.Entry + "\x00" + rec.Metric + "\x00" + fmt.Sprint(rec.Target)
		i, ok := index[key]
		if !ok {
			i = len(groups)
			index[key] = i
			groups = append(groups, convergenceGroup{entry: rec.Entry, metric: rec.Metric, target: rec.Target})
		}
		groups[i].rounds = append(groups[i].rounds, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("no convergence rounds in journal")
	}
	return groups, nil
}

// renderTelemetry writes each analysis's runs-vs-width convergence table:
// how many executions each refinement round had, how wide the SPA
// interval was, and how far from the target that left it.
func renderTelemetry(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	groups, err := readTelemetry(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "convergence traces: %d adaptive analyses\n", len(groups))
	for _, g := range groups {
		last := g.rounds[len(g.rounds)-1]
		verdict := "converged"
		if last.Width > g.target {
			verdict = "hit sample budget"
		}
		fmt.Fprintf(w, "\n%s %s (target width %g, %d rounds, %s)\n",
			g.entry, g.metric, g.target, len(g.rounds), verdict)
		fmt.Fprintf(w, "  %-6s %-8s %-14s %s\n", "round", "runs", "width", "of-target")
		for _, rd := range g.rounds {
			ratio := "-"
			if g.target > 0 {
				ratio = fmt.Sprintf("%.3gx", rd.Width/g.target)
			}
			fmt.Fprintf(w, "  %-6d %-8d %-14.6g %s\n", rd.Round, rd.Samples, rd.Width, ratio)
		}
	}
	return nil
}
