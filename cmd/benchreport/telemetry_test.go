package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleJournal = `{"entry":"swaptions-default","metric":"runtime_s","round":1,"samples":10,"width":0.02,"target":0.005}
{"entry":"swaptions-default","metric":"runtime_s","round":2,"samples":20,"width":0.008,"target":0.005}
{"entry":"swaptions-default","metric":"runtime_s","round":3,"samples":30,"width":0.004,"target":0.005}
{"entry":"canneal-default","metric":"ipc","round":1,"samples":10,"width":0.5,"target":0.001}
{"entry":"canneal-default","metric":"ipc","round":2,"samples":40,"width":0.3,"target":0.001}
`

func TestRenderTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x-telemetry.jsonl")
	if err := os.WriteFile(path, []byte(sampleJournal), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-telemetry", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"2 adaptive analyses",
		"swaptions-default runtime_s (target width 0.005, 3 rounds, converged)",
		"canneal-default ipc (target width 0.001, 2 rounds, hit sample budget)",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
	// The swaptions trajectory renders one line per round with the runs
	// column intact.
	for _, runs := range []string{" 10 ", " 20 ", " 30 "} {
		if !strings.Contains(got, runs) {
			t.Errorf("output missing runs column %q:\n%s", runs, got)
		}
	}
}

func TestRenderTelemetryRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-telemetry", bad}, nil, &bytes.Buffer{}); err == nil {
		t.Error("malformed journal must error")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-telemetry", empty}, nil, &bytes.Buffer{}); err == nil {
		t.Error("empty journal must error")
	}
}
