// Command benchreport converts `go test -bench` text output into the
// repository's BENCH_N.json perf-trajectory format: one record per
// benchmark with ns/op, every ReportMetric value (sim-cycles, B/op,
// allocs/op, ...), and — when a baseline run is supplied — the relative
// ns/op improvement, so a regression shows up as a negative number in the
// committed artifact.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . > bench.txt
//	benchreport -in bench.txt -baseline old-bench.txt -out BENCH_3.json
//
// -in - reads the benchmark text from stdin instead.
//
// A second mode renders campaign convergence journals: point -telemetry
// at the <name>-telemetry.jsonl a campaign with adaptive (target_width)
// analyses wrote next to its report, and each analysis's runs-vs-width
// trajectory is printed as a table:
//
//	benchreport -telemetry results/nightly-telemetry.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every further "value unit" pair the benchmark emitted:
	// testing's B/op and allocs/op plus custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// BaselineNsPerOp and ImprovementPct are filled when -baseline has a
	// benchmark of the same name. Positive improvement = faster.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	ImprovementPct  float64 `json:"improvement_pct,omitempty"`
}

// Report is the BENCH_N.json document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	in := fs.String("in", "-", "benchmark text ('go test -bench' output); - for stdin")
	baseline := fs.String("baseline", "", "optional baseline benchmark text to compute ns/op improvements against")
	out := fs.String("out", "", "output JSON file (default stdout)")
	telemetry := fs.String("telemetry", "", "render a campaign convergence journal (<name>-telemetry.jsonl) as runs-vs-width tables instead of parsing benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *telemetry != "" {
		return renderTelemetry(*telemetry, stdout)
	}
	rep, err := parseSource(*in, stdin)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in %s", *in)
	}
	if *baseline != "" {
		base, err := parseSource(*baseline, nil)
		if err != nil {
			return err
		}
		applyBaseline(rep, base)
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rep)
}

func parseSource(path string, stdin io.Reader) (*Report, error) {
	if path == "-" {
		if stdin == nil {
			return nil, fmt.Errorf("stdin not available")
		}
		return Parse(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// gomaxprocsSuffix is the trailing -N testing appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` text output. Lines it does not recognize
// (PASS, ok, test logs) are skipped, so piping the full test output works.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine decodes one result line:
//
//	BenchmarkName/sub-8  420  5340304 ns/op  267268 sim-cycles  20285 allocs/op
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := Benchmark{Name: gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")}
	var err error
	b.Iterations, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations in %q: %v", line, err)
	}
	// The rest are "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q in %q: %v", fields[i], line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, nil
}

// applyBaseline annotates rep's benchmarks with the baseline ns/op and the
// relative improvement of any same-named baseline benchmark.
func applyBaseline(rep, base *Report) {
	old := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b.NsPerOp
	}
	for i := range rep.Benchmarks {
		prev, ok := old[rep.Benchmarks[i].Name]
		if !ok || prev == 0 || rep.Benchmarks[i].NsPerOp == 0 {
			continue
		}
		rep.Benchmarks[i].BaselineNsPerOp = prev
		pct := (prev - rep.Benchmarks[i].NsPerOp) / prev * 100
		// Round to 0.1% so the committed artifact does not churn on noise
		// digits.
		rep.Benchmarks[i].ImprovementPct = roundTenth(pct)
	}
}

func roundTenth(v float64) float64 {
	scaled := v * 10
	if scaled >= 0 {
		scaled += 0.5
	} else {
		scaled -= 0.5
	}
	return float64(int64(scaled)) / 10
}
