package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorThroughput/ferret-8         	     420	   5340304 ns/op	    267268 sim-cycles	 2935639 B/op	   20285 allocs/op
BenchmarkPopulationGeneration-8               	      64	  36680329 ns/op	32434650 B/op	  115206 allocs/op
PASS
ok  	repro	10.560s
`

const sampleBaseline = `BenchmarkSimulatorThroughput/ferret-8  400  10680608 ns/op
BenchmarkPopulationGeneration-8        32   36680329 ns/op
BenchmarkOnlyInBaseline-8              10    1000000 ns/op
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "SimulatorThroughput/ferret" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Iterations != 420 || b.NsPerOp != 5340304 {
		t.Errorf("ferret = %+v", b)
	}
	want := map[string]float64{"sim-cycles": 267268, "B/op": 2935639, "allocs/op": 20285}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %g, want %g", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 notanint 5 ns/op",
		"BenchmarkBroken-8 10 zzz ns/op",
	} {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("no error for %q", line)
		}
	}
}

func TestBaselineImprovement(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Parse(strings.NewReader(sampleBaseline))
	if err != nil {
		t.Fatal(err)
	}
	applyBaseline(rep, base)
	ferret := rep.Benchmarks[0]
	if ferret.BaselineNsPerOp != 10680608 {
		t.Fatalf("baseline = %g", ferret.BaselineNsPerOp)
	}
	if ferret.ImprovementPct != 50.0 {
		t.Fatalf("improvement = %g, want 50.0", ferret.ImprovementPct)
	}
	// Identical ns/op → 0% improvement, still annotated.
	popgen := rep.Benchmarks[1]
	if popgen.BaselineNsPerOp != 36680329 || popgen.ImprovementPct != 0 {
		t.Fatalf("popgen = %+v", popgen)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	baseline := filepath.Join(dir, "baseline.txt")
	out := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", in, "-baseline", baseline, "-out", out}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 || rep.Benchmarks[0].ImprovementPct != 50.0 {
		t.Fatalf("report = %+v", rep)
	}
	// Empty input is an error, not an empty artifact.
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", empty}, nil, nil); err == nil {
		t.Fatal("no error for empty input")
	}
}
