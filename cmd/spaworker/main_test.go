package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/population"
	"repro/internal/sim"
)

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spaworker ") || !strings.Contains(buf.String(), "go: go") {
		t.Errorf("version output wrong:\n%s", buf.String())
	}
}

func TestBadFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf, nil); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-listen", "256.0.0.1:bad"}, &buf, nil); err == nil {
		t.Error("unusable listen address should error")
	}
}

// TestServeEndToEnd boots the CLI worker on a free port, runs a small
// campaign against it through a coordinator, and checks the samples
// match a local run.
func TestServeEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	workerCh := make(chan *dist.Worker, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0"}, &buf, func(w *dist.Worker) { workerCh <- w })
	}()
	var worker *dist.Worker
	select {
	case worker = <-workerCh:
	case err := <-done:
		t.Fatalf("worker exited early: %v", err)
	}
	defer worker.Close()

	coord := &dist.Coordinator{Workers: []string{worker.Addr()}, ChunkSize: 4}
	pop, err := coord.GeneratePopulation("swaptions", sim.DefaultConfig(), 0.05, 8, 3, population.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := population.Generate("swaptions", sim.DefaultConfig(), 0.05, 8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := pop.Metrics[sim.MetricRuntime]
	exp := want.Metrics[sim.MetricRuntime]
	if len(got) != len(exp) {
		t.Fatalf("got %d samples, want %d", len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Errorf("sample %d: %g != %g", i, got[i], exp[i])
		}
	}

	worker.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v on clean close", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("worker did not shut down after Close")
	}
	if !strings.Contains(buf.String(), "listening on 127.0.0.1:") {
		t.Errorf("missing listen line:\n%s", buf.String())
	}
}
