// Command spaworker serves SPA campaign chunks to remote coordinators:
// it listens on a TCP address, executes the workload+sim runs that
// campaign/spa processes dispatch to it (see internal/dist), and streams
// per-run results back. Because every run is deterministic for its seed,
// a fleet of spaworkers produces populations byte-identical to a local
// campaign.
//
// Usage:
//
//	spaworker -listen :9777                 # serve until SIGINT/SIGTERM
//	spaworker -listen 127.0.0.1:0 -parallel 4
//
// Point campaign or spa at it with -workers host:port[,host:port...].
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dist"
	"repro/internal/faultx"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "spaworker:", err)
		os.Exit(1)
	}
}

// run starts the worker and serves until a termination signal arrives or
// ready (a test seam) is handed the worker and closes it.
func run(args []string, w io.Writer, ready func(*dist.Worker)) error {
	fs := flag.NewFlagSet("spaworker", flag.ContinueOnError)
	listen := fs.String("listen", ":9777", "TCP address to serve on (host:port; port 0 picks a free port)")
	parallel := fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	batchRuns := fs.Int("batch-runs", 0, "flush a result_batch frame after this many buffered runs on v3 connections (0 = 64)")
	batchFlush := fs.Duration("batch-flush", 0, "flush buffered results at least this often on v3 connections (0 = 25ms)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight chunks on SIGINT/SIGTERM before closing hard")
	chaosSeed := fs.Uint64("chaos-seed", 0, "DEV ONLY: inject deterministic transport faults seeded by this value (0 disables)")
	chaosProfile := fs.String("chaos-profile", "all", "DEV ONLY: comma-separated fault scenarios for -chaos-seed (delay,stall,close,partial,dup,refuse or all)")
	version := fs.Bool("version", false, "print build information and exit")
	var of obs.Flags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(w, "spaworker")
		return nil
	}
	o, closeObs, err := of.Start("chunks", w)
	if err != nil {
		return err
	}

	worker := &dist.Worker{Parallelism: *parallel, BatchRuns: *batchRuns, BatchFlush: *batchFlush, Obs: o}
	// /statusz reports the worker's own serving state (runs served,
	// in-flight, active connections).
	o.SetStatus(func() any { return worker.Status() })
	if *chaosSeed != 0 {
		prof, err := faultx.ParseProfile(*chaosProfile)
		if err != nil {
			closeObs()
			return err
		}
		inj := faultx.New(*chaosSeed, prof, o)
		worker.ListenFunc = inj.Listen
		fmt.Fprintf(w, "spaworker: CHAOS fault injection enabled (seed %d, profile %s) — dev use only\n",
			*chaosSeed, *chaosProfile)
	}
	if err := worker.Listen(*listen); err != nil {
		closeObs()
		return err
	}
	fmt.Fprintf(w, "spaworker: listening on %s\n", worker.Addr())

	if ready != nil {
		ready(worker)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sig
			fmt.Fprintf(w, "spaworker: %v, draining (in-flight chunks finish, new ones are refused)\n", s)
			if err := worker.Shutdown(*drainTimeout); err != nil {
				fmt.Fprintf(w, "spaworker: drain: %v\n", err)
			}
		}()
	}

	err = worker.Serve()
	if cerr := closeObs(); err == nil {
		err = cerr
	}
	return err
}
