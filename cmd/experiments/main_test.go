package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig15", "table1", "table2", "minsamples"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list missing %q", id)
		}
	}
}

func TestRequiresSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no -all/-exp should error")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

func TestSingleCheapExperiments(t *testing.T) {
	var buf bytes.Buffer
	// table2 and minsamples need no simulation at all.
	if err := run([]string{"-exp", "table2, minsamples", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MESI directory") || !strings.Contains(out, "22") {
		t.Errorf("experiment output incomplete:\n%s", out)
	}
}

func TestSimulatedExperimentWithOverrides(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig2", "-quick", "-runs", "24", "-trials", "10",
		"-scale", "0.05", "-seed", "9"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig2") {
		t.Error("fig2 output missing")
	}
	if !strings.Contains(buf.String(), "24 runs") {
		t.Errorf("runs override not applied:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig99", "-quick"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}
