package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "experiments ") {
		t.Errorf("version output wrong:\n%s", buf.String())
	}
}

func TestTelemetryFlags(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	var buf bytes.Buffer
	// fig5 simulates the two speedup populations (base + improved L2),
	// so -runs 12 yields 24 completed simulations.
	if err := run([]string{"-exp", "fig5", "-quick", "-runs", "12", "-metrics", metricsPath}, &buf); err != nil {
		t.Fatal(err)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "spa_runs_completed_total 24") {
		t.Errorf("metrics dump missing run counter:\n%s", metrics)
	}
}

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig15", "table1", "table2", "minsamples"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list missing %q", id)
		}
	}
}

func TestRequiresSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no -all/-exp should error")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

func TestSingleCheapExperiments(t *testing.T) {
	var buf bytes.Buffer
	// table2 and minsamples need no simulation at all.
	if err := run([]string{"-exp", "table2, minsamples", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MESI directory") || !strings.Contains(out, "22") {
		t.Errorf("experiment output incomplete:\n%s", out)
	}
}

func TestSimulatedExperimentWithOverrides(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig2", "-quick", "-runs", "24", "-trials", "10",
		"-scale", "0.05", "-seed", "9"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig2") {
		t.Error("fig2 output missing")
	}
	if !strings.Contains(buf.String(), "24 runs") {
		t.Errorf("runs override not applied:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig99", "-quick"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}
