// Command experiments regenerates the paper's evaluation: every figure and
// table of Secs. 5–6 as text tables (see EXPERIMENTS.md for the recorded
// comparison against the paper).
//
// Usage:
//
//	experiments -all                # everything, paper-scale (minutes)
//	experiments -all -quick         # everything, scaled down (seconds)
//	experiments -exp fig6,fig8
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/popcache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	all := fs.Bool("all", false, "run every experiment")
	which := fs.String("exp", "", "comma-separated experiment ids (e.g. fig6,fig8,table1)")
	quick := fs.Bool("quick", false, "scaled-down sizes (shapes preserved, much faster)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	runs := fs.Int("runs", 0, "override population size per benchmark")
	trials := fs.Int("trials", 0, "override CI trial count")
	scale := fs.Float64("scale", 0, "override workload scale")
	seed := fs.Uint64("seed", 0, "override campaign seed")
	popcacheDir := fs.String("popcache", "", "content-addressed population cache directory; repeated runs reuse byte-identical populations instead of re-simulating")
	version := fs.Bool("version", false, "print build information and exit")
	var of obs.Flags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(w, "experiments")
		return nil
	}

	if *list {
		for _, id := range exp.ExperimentNames() {
			fmt.Fprintln(w, id)
		}
		return nil
	}

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seed > 0 {
		opts.Seed = *seed
	}
	engine := exp.NewEngine(opts)
	if *popcacheDir != "" {
		engine.SetPopCache(popcache.New(*popcacheDir, 0))
	}
	o, closeObs, err := of.Start("runs", os.Stderr)
	if err != nil {
		return err
	}
	engine.SetObserver(o)
	runErr := func() error {
		if *all {
			return engine.RunAll(w)
		}
		if *which == "" {
			return fmt.Errorf("provide -all or -exp (ids: %s)", strings.Join(exp.ExperimentNames(), ", "))
		}
		for _, id := range strings.Split(*which, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			t, err := engine.Run(id)
			if err != nil {
				return err
			}
			t.Render(w)
		}
		return nil
	}()
	if cerr := closeObs(); runErr == nil {
		runErr = cerr
	}
	return runErr
}
