// Command campaign executes declarative experiment manifests: simulate the
// listed benchmark populations (resuming any already on disk) and run the
// listed SPA analyses over each, producing a JSON report — the
// gem5art-style automation layer the paper's Sec. 7 anticipates.
//
// Usage:
//
//	campaign -init > my.json        # write a template manifest
//	campaign -manifest my.json -out results/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/manifest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	path := fs.String("manifest", "", "manifest JSON file")
	out := fs.String("out", "campaign-out", "output directory for populations and the report")
	parallel := fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	initTpl := fs.Bool("init", false, "print a template manifest and exit")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *initTpl {
		return manifest.Template().Save(w)
	}
	if *path == "" {
		return fmt.Errorf("provide -manifest (or -init for a template)")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := manifest.Load(f)
	if err != nil {
		return err
	}
	runner := &manifest.Runner{OutDir: *out, Parallelism: *parallel}
	if !*quiet {
		runner.Log = w
	}
	report, err := runner.Run(m)
	if err != nil {
		return err
	}
	report.Render(w)
	return nil
}
