// Command campaign executes declarative experiment manifests: simulate the
// listed benchmark populations (resuming any already on disk) and run the
// listed SPA analyses over each, producing a JSON report — the
// gem5art-style automation layer the paper's Sec. 7 anticipates.
//
// Usage:
//
//	campaign -init > my.json        # write a template manifest
//	campaign -manifest my.json -out results/
//	campaign -manifest my.json -out results/ -workers host1:9777,host2:9777
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dist"
	"repro/internal/faultx"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/popcache"
	"repro/internal/sampling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	path := fs.String("manifest", "", "manifest JSON file")
	out := fs.String("out", "campaign-out", "output directory for populations and the report")
	parallel := fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	workers := fs.String("workers", "", "comma-separated spaworker addresses (host:port,...) to distribute simulations across; results are byte-identical to a local run")
	chunkTargetMS := fs.Int("chunk-target-ms", 250, "target wall time per dispatched chunk in milliseconds; chunks are sized from each worker's observed throughput (0 = fixed-size chunks)")
	popcacheDir := fs.String("popcache", "", "content-addressed population cache directory shared across campaigns; hits are byte-identical to re-simulating")
	samplingDesign := fs.String("sampling", "", "default variance-reduction design for adaptive analyses: plain, stratified or rss (per-analysis manifest settings win)")
	chaosSeed := fs.Uint64("chaos-seed", 0, "DEV ONLY: inject deterministic transport faults on -workers connections, seeded by this value (0 disables)")
	chaosProfile := fs.String("chaos-profile", "all", "DEV ONLY: comma-separated fault scenarios for -chaos-seed (delay,stall,close,partial,dup,refuse or all)")
	initTpl := fs.Bool("init", false, "print a template manifest and exit")
	quiet := fs.Bool("quiet", false, "suppress all progress output (overrides -progress)")
	version := fs.Bool("version", false, "print build information and exit")
	var of obs.Flags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(w, "campaign")
		return nil
	}
	if *initTpl {
		return manifest.Template().Save(w)
	}
	if *path == "" {
		return fmt.Errorf("provide -manifest (or -init for a template)")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := manifest.Load(f)
	if err != nil {
		return err
	}
	o, closeObs, err := of.Start("runs", w)
	if err != nil {
		return err
	}
	// Every progress line — per-entry milestones, per-run ticks, the
	// report path — flows through the one progress reporter, so -quiet
	// silences all of it consistently (it also overrides -progress).
	switch {
	case *quiet:
		if o != nil {
			o.Progress = nil
		}
	case o == nil:
		o = &obs.Observer{Progress: obs.NewProgress(w, "runs", 0)}
	case o.Progress == nil:
		o.Progress = obs.NewProgress(w, "runs", 0)
	}
	if _, err := sampling.ParseDesign(*samplingDesign); err != nil {
		closeObs()
		return err
	}
	runner := &manifest.Runner{OutDir: *out, Parallelism: *parallel, Obs: o, Workers: dist.SplitAddrs(*workers),
		ChunkTarget: time.Duration(*chunkTargetMS) * time.Millisecond, Sampling: *samplingDesign}
	// /statusz reports the campaign and the coordinator's live chunk and
	// per-worker state for the duration of the run.
	o.SetStatus(func() any {
		return struct {
			Campaign string                 `json:"campaign"`
			Workers  []string               `json:"configured_workers,omitempty"`
			Coord    dist.CoordinatorStatus `json:"coordinator"`
		}{m.Name, runner.Workers, runner.Coordinator().Status()}
	})
	if *popcacheDir != "" {
		runner.PopCache = popcache.New(*popcacheDir, 0)
	}
	if *chaosSeed != 0 {
		prof, err := faultx.ParseProfile(*chaosProfile)
		if err != nil {
			closeObs()
			return err
		}
		runner.Dial = faultx.New(*chaosSeed, prof, o).Dial
		fmt.Fprintf(w, "campaign: CHAOS fault injection on worker connections (seed %d, profile %s) — dev use only\n",
			*chaosSeed, *chaosProfile)
	}
	report, err := runner.Run(m)
	if err != nil {
		closeObs()
		return err
	}
	if !*quiet {
		report.Render(w)
	} else {
		// -quiet keeps machine-readable output only: the report JSON on
		// disk plus a single completion line.
		fmt.Fprintf(w, "campaign %s: %d results written to %s\n",
			report.Name, len(report.Results), runner.ReportPath(m))
	}
	return closeObs()
}
