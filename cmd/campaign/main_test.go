package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInitTemplate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-init"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"benchmark": "ferret"`) {
		t.Errorf("template missing content:\n%s", buf.String())
	}
}

func TestRequiresManifest(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no manifest should error")
	}
	if err := run([]string{"-manifest", filepath.Join(t.TempDir(), "missing.json")}, &buf); err == nil {
		t.Error("missing manifest file should error")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

func TestEndToEndCampaign(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "m.json")
	js := `{
 "name": "cli",
 "seed": 3,
 "scale": 0.05,
 "runs": 24,
 "entries": [{"benchmark": "swaptions"}],
 "analyses": [{"metric": "runtime_s", "f": 0.5, "c": 0.9}]
}`
	if err := os.WriteFile(mf, []byte(js), 0o600); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	out := filepath.Join(dir, "results")
	if err := run([]string{"-manifest", mf, "-out", out, "-quiet"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "campaign cli") {
		t.Errorf("missing report output:\n%s", buf.String())
	}
	if _, err := os.Stat(filepath.Join(out, "cli-report.json")); err != nil {
		t.Errorf("report not written: %v", err)
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "campaign ") || !strings.Contains(buf.String(), "go: go") {
		t.Errorf("version output wrong:\n%s", buf.String())
	}
}

// TestTelemetryEndToEnd is the CLI acceptance check: with -trace and
// -metrics, a small campaign emits a JSONL span per simulation run and a
// metrics dump whose runs-completed counter equals the manifest run count.
func TestTelemetryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "m.json")
	js := `{
 "name": "tele",
 "seed": 3,
 "scale": 0.05,
 "runs": 6,
 "entries": [{"benchmark": "swaptions"}],
 "analyses": [{"metric": "runtime_s", "f": 0.5, "c": 0.9}]
}`
	if err := os.WriteFile(mf, []byte(js), 0o600); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var buf bytes.Buffer
	err := run([]string{
		"-manifest", mf, "-out", filepath.Join(dir, "results"),
		"-trace", tracePath, "-metrics", metricsPath, "-progress",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(trace), `"name":"sim.run"`); got != 6 {
		t.Errorf("trace has %d sim.run spans, want 6:\n%s", got, trace)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "spa_runs_completed_total 6") {
		t.Errorf("metrics dump missing runs_completed=6:\n%s", metrics)
	}
	if !strings.Contains(buf.String(), "finished 6 in") {
		t.Errorf("progress finish line missing:\n%s", buf.String())
	}
}

// TestQuietSilencesAllProgress pins the -quiet contract: no progress
// lines at all, even combined with -progress; only the completion line.
func TestQuietSilencesAllProgress(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "m.json")
	js := `{
 "name": "hush",
 "seed": 3,
 "scale": 0.05,
 "runs": 4,
 "entries": [{"benchmark": "swaptions"}],
 "analyses": [{"metric": "runtime_s", "f": 0.5, "c": 0.9}]
}`
	if err := os.WriteFile(mf, []byte(js), 0o600); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{
		"-manifest", mf, "-out", filepath.Join(dir, "results"), "-quiet", "-progress",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"simulating", "report written", "ETA", "finished"} {
		if strings.Contains(out, frag) {
			t.Errorf("-quiet leaked progress fragment %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "campaign hush: 1 results written to") {
		t.Errorf("-quiet completion line missing:\n%s", out)
	}
}

func TestInvalidManifestSurfaces(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(mf, []byte(`{"name":"x"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-manifest", mf}, &buf); err == nil {
		t.Error("invalid manifest should error")
	}
}
