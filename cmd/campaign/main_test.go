package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInitTemplate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-init"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"benchmark": "ferret"`) {
		t.Errorf("template missing content:\n%s", buf.String())
	}
}

func TestRequiresManifest(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no manifest should error")
	}
	if err := run([]string{"-manifest", filepath.Join(t.TempDir(), "missing.json")}, &buf); err == nil {
		t.Error("missing manifest file should error")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

func TestEndToEndCampaign(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "m.json")
	js := `{
 "name": "cli",
 "seed": 3,
 "scale": 0.05,
 "runs": 24,
 "entries": [{"benchmark": "swaptions"}],
 "analyses": [{"metric": "runtime_s", "f": 0.5, "c": 0.9}]
}`
	if err := os.WriteFile(mf, []byte(js), 0o600); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	out := filepath.Join(dir, "results")
	if err := run([]string{"-manifest", mf, "-out", out, "-quiet"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "campaign cli") {
		t.Errorf("missing report output:\n%s", buf.String())
	}
	if _, err := os.Stat(filepath.Join(out, "cli-report.json")); err != nil {
		t.Errorf("report not written: %v", err)
	}
}

func TestInvalidManifestSurfaces(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(mf, []byte(`{"name":"x"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-manifest", mf}, &buf); err == nil {
		t.Error("invalid manifest should error")
	}
}
