// Command spad is the SPA campaign daemon: a multi-tenant HTTP service
// that admits campaign manifests, schedules them fairly across tenants
// (weighted deficit round robin, FIFO per tenant), executes them over a
// shared worker fleet, and journals every state transition so a
// restarted spad resumes exactly where it stopped — populations already
// simulated are reloaded, not re-run, and the final report is identical
// to an uninterrupted run.
//
// Usage:
//
//	spad -listen :9800 -data /var/lib/spad
//	spad -listen :9800 -data ./spad-data -workers :9777,:9778 -popcache ./popcache
//
// API (see README "Campaign service"):
//
//	POST   /v1/campaigns             {"tenant": "...", "priority": N, "manifest": {...}}
//	GET    /v1/campaigns             list
//	GET    /v1/campaigns/{id}        status + per-entry progress + convergence rounds
//	GET    /v1/campaigns/{id}/report final report
//	DELETE /v1/campaigns/{id}        cancel
//	GET    /v1/queue                 per-tenant scheduler snapshot
//	GET    /metrics | /statusz | /healthz
//
// SIGINT/SIGTERM drains gracefully: admission closes (503), running
// campaigns are journaled back to queued, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/campaignd"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/popcache"
	"repro/internal/sampling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "spad:", err)
		os.Exit(1)
	}
}

// run boots the daemon and serves until a termination signal arrives or
// ready (a test seam) is handed the bound address and the stop func.
func run(args []string, w io.Writer, ready func(addr string, stop func())) error {
	fs := flag.NewFlagSet("spad", flag.ContinueOnError)
	listen := fs.String("listen", ":9800", "HTTP address to serve on (host:port; port 0 picks a free port)")
	dataDir := fs.String("data", "", "journal directory: one subdirectory per campaign (required)")
	workers := fs.String("workers", "", "comma-separated spaworker addresses shared by all campaigns (empty = run in-process)")
	parallel := fs.Int("parallel", 0, "max concurrent in-process simulations across all campaigns (0 = GOMAXPROCS)")
	chunkTargetMS := fs.Int("chunk-target-ms", 250, "target wall time per dispatched chunk in milliseconds; chunks are sized from each worker's observed throughput (0 = fixed-size chunks)")
	popcacheDir := fs.String("popcache", "", "content-addressed population cache directory shared across campaigns")
	samplingDesign := fs.String("sampling", "", "default variance-reduction design for adaptive analyses: plain, stratified or rss (per-analysis manifest settings win)")
	maxRunning := fs.Int("max-running", 0, "max concurrently executing campaigns across all tenants (0 = 4)")
	tenantRunning := fs.Int("tenant-running", 0, "max concurrently executing campaigns per tenant (0 = 2)")
	tenantQueue := fs.Int("tenant-queue", 0, "max queued campaigns per tenant before 429 (0 = 16)")
	maxQueued := fs.Int("max-queued", 0, "max queued campaigns server-wide before 429 (0 = 256)")
	quantum := fs.Int("quantum", 0, "DRR credit per scheduler rotation, in simulated runs (0 = 256)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for running campaigns to journal themselves on SIGINT/SIGTERM")
	version := fs.Bool("version", false, "print build information and exit")
	var of obs.Flags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		buildinfo.Fprint(w, "spad")
		return nil
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	if _, err := sampling.ParseDesign(*samplingDesign); err != nil {
		return err
	}
	o, closeObs, err := of.Start("campaigns", w)
	if err != nil {
		return err
	}
	defer func() { _ = closeObs() }()
	if o == nil {
		// Unlike the one-shot CLIs, the daemon always serves /metrics and
		// /statusz, so it needs a live registry even with no telemetry
		// flags.
		o = &obs.Observer{Metrics: obs.NewRegistry()}
	}

	cfg := campaignd.Config{
		DataDir:          *dataDir,
		Workers:          dist.SplitAddrs(*workers),
		Parallelism:      *parallel,
		ChunkTarget:      time.Duration(*chunkTargetMS) * time.Millisecond,
		MaxRunning:       *maxRunning,
		TenantRunningCap: *tenantRunning,
		TenantQueueCap:   *tenantQueue,
		MaxQueued:        *maxQueued,
		Quantum:          *quantum,
		Sampling:         *samplingDesign,
		Obs:              o,
	}
	if *popcacheDir != "" {
		cfg.PopCache = popcache.New(*popcacheDir, 0)
	}
	svc := campaignd.New(cfg)
	if err := svc.Start(); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: campaignd.NewHandler(svc, o), ReadHeaderTimeout: 5 * time.Second}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	fmt.Fprintf(w, "spad: serving on %s (data %s, %d workers)\n", ln.Addr(), *dataDir, len(cfg.Workers))

	stop := func() {
		svc.Drain(*drainTimeout)
		_ = srv.Close()
	}
	if ready != nil {
		ready(ln.Addr().String(), stop)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sig
			fmt.Fprintf(w, "spad: %v, draining (running campaigns journal themselves back to queued)\n", s)
			stop()
		}()
	}

	if err := <-serveDone; err != nil && err != http.ErrServerClosed {
		return err
	}
	fmt.Fprintln(w, "spad: drained, exiting")
	return nil
}
