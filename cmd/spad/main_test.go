package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/manifest"
	"repro/internal/sim"
)

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spad ") || !strings.Contains(buf.String(), "go: go") {
		t.Errorf("version output wrong:\n%s", buf.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf, nil); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"-listen", "127.0.0.1:0"}, &buf, nil); err == nil || !strings.Contains(err.Error(), "-data") {
		t.Errorf("missing -data should error, got %v", err)
	}
}

// TestServeSubmitDrain boots the daemon end to end: submit a campaign
// over HTTP, watch it finish, then stop (the graceful-shutdown path) and
// require a clean exit.
func TestServeSubmitDrain(t *testing.T) {
	var buf bytes.Buffer
	type boot struct {
		addr string
		stop func()
	}
	bootCh := make(chan boot, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-data", t.TempDir()}, &buf,
			func(addr string, stop func()) { bootCh <- boot{addr, stop} })
	}()
	var b boot
	select {
	case b = <-bootCh:
	case err := <-done:
		t.Fatalf("spad exited early: %v\n%s", err, buf.String())
	}

	m := &manifest.Manifest{
		Name: "cli", Seed: 3, Scale: 0.05, Runs: 16,
		Entries:  []manifest.Entry{{Benchmark: "swaptions"}},
		Analyses: []manifest.Analysis{{Metric: sim.MetricRuntime, F: 0.5, C: 0.9}},
	}
	mb, _ := json.Marshal(m)
	resp, err := http.Post("http://"+b.addr+"/v1/campaigns", "application/json",
		strings.NewReader(`{"tenant":"cli","manifest":`+string(mb)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get("http://" + b.addr + "/v1/campaigns/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var rec struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rec.State == "done" {
			break
		}
		if rec.State == "failed" || rec.State == "cancelled" {
			t.Fatalf("campaign %s: %s", rec.State, rec.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %s", rec.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	b.stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("spad exit: %v\n%s", err, buf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("spad did not exit after stop")
	}
	if !strings.Contains(buf.String(), "drained, exiting") {
		t.Errorf("missing drain log:\n%s", buf.String())
	}
}
