package repro

import (
	"testing"

	"repro/internal/ci"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/smc"
)

// analysisSample builds the n=1000 lognormal-ish sample the analysis-kernel
// benchmarks share: continuous (no BCa degeneracy) with a mild heavy tail,
// shaped like the simulator's runtime populations.
func analysisSample(n int) []float64 {
	r := randx.New(42)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(0, 0.15)
	}
	return xs
}

// BenchmarkBootstrapBCa measures the full BCa construction — B resamples,
// bias correction, jackknife acceleration — at the paper-scale setting
// n=1000, B=2000 that dominates figure generation post-popcache.
func BenchmarkBootstrapBCa(b *testing.B) {
	xs := analysisSample(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ci.BootstrapBCa(xs, 0.5, 0.9, ci.BootstrapOptions{Resamples: 2000, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClopperPearsonCI measures the exact Clopper–Pearson proportion
// interval (two BetaQuantile inversions) plus SPA's order-statistic CI,
// the per-trial analysis cost of every campaign.
func BenchmarkClopperPearsonCI(b *testing.B) {
	xs := analysisSample(1000)
	p := core.Params{F: 0.9, C: 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smc.ProportionInterval(893, 1000, 0.95); err != nil {
			b.Fatal(err)
		}
		if _, err := core.ConfidenceInterval(xs, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateCI measures one full CI-evaluation campaign cell
// (trials × methods over one population metric) — the unit the figure
// engine fans out over.
func BenchmarkEvaluateCI(b *testing.B) {
	e := engine()
	pop, err := e.Population("ferret", exp.VariantDefault)
	if err != nil {
		b.Fatal(err)
	}
	methods := []exp.Method{exp.MethodSPA, exp.MethodBootstrap, exp.MethodRank, exp.MethodZScore}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvaluateCI(pop, sim.MetricRuntime, 0.5, 0.9, methods); err != nil {
			b.Fatal(err)
		}
	}
}
