// Package repro is a from-scratch Go reproduction of "Rigorous Evaluation
// of Computer Processors with Statistical Model Checking" (MICRO 2023):
// the SMC engine and SPA framework (internal/smc, internal/core), the
// prior statistical baselines (internal/ci), the property machinery
// (internal/stl, internal/property), the simulator substrate
// (internal/sim, internal/workload), and the experiment harness that
// regenerates every table and figure of the paper's evaluation
// (internal/exp, cmd/experiments).
//
// The root package holds only the benchmark harness (bench_test.go): one
// testing.B benchmark per paper table/figure plus the ablations listed in
// DESIGN.md. See README.md for a tour and EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package repro
